/**
 * @file
 * Tests for chunked prefill as first-class pipeline events: the
 * chunk planner's conservation properties, the sim-level sequence
 * submission (chunk pipelining + FIFO interleaving), the stage
 * device's prefill/decode interference, the engine's Prefilling
 * state (TTFT reporting, decode-stall vs chunk size, scalar-charge
 * parity), and the per-stage layer remainder.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mapping/parallel.hh"
#include "sim/device.hh"
#include "sim/event_queue.hh"
#include "sim/pipeline.hh"
#include "system/engine.hh"
#include "system/prefill.hh"
#include "system/stage_device.hh"
#include "workload/arrival.hh"

namespace pimphony {
namespace {

// --- Chunk planner. --------------------------------------------------

TEST(PrefillChunks, CoverContextAndConserveFlops)
{
    auto model = LlmConfig::llm7b(true);
    const Tokens ctx = 10000, chunk = 3000;
    auto chunks = prefillChunks(model, ctx, chunk);
    ASSERT_EQ(chunks.size(), 4u); // 3000 + 3000 + 3000 + 1000
    Tokens covered = 0;
    double flops = 0.0;
    for (std::size_t k = 0; k < chunks.size(); ++k) {
        EXPECT_EQ(chunks[k].firstToken, covered);
        covered += chunks[k].tokens;
        flops += chunks[k].flops;
    }
    EXPECT_EQ(covered, ctx);
    EXPECT_EQ(chunks.back().tokens, 1000u);
    // The chunk split telescopes exactly to the scalar FLOP count.
    EXPECT_NEAR(flops, prefillFlops(model, ctx),
                1e-9 * prefillFlops(model, ctx));
    // Causal attention makes later (equal-sized) chunks costlier.
    EXPECT_GT(chunks[1].flops, chunks[0].flops);
    EXPECT_GT(chunks[2].flops, chunks[1].flops);
}

TEST(PrefillChunks, EdgeCases)
{
    auto model = LlmConfig::llm7b(true);
    EXPECT_TRUE(prefillChunks(model, 0, 512).empty());
    // chunk_tokens == 0 or >= tokens: one chunk.
    EXPECT_EQ(prefillChunks(model, 100, 0).size(), 1u);
    EXPECT_EQ(prefillChunks(model, 100, 4096).size(), 1u);
    EXPECT_EQ(prefillChunks(model, 4096, 4096).size(), 1u);
}

TEST(PrefillChunks, SecondsSumToScalarCharge)
{
    auto model = LlmConfig::llm7b(true);
    auto cfg = XpuConfig::neupimsNpu();
    const Tokens ctx = 57000;
    for (Tokens chunk : {Tokens{512}, Tokens{2048}, Tokens{60000}}) {
        auto secs = prefillChunkSeconds(model, ctx, chunk, cfg, 4);
        double sum = 0.0;
        for (double s : secs)
            sum += s;
        double scalar = prefillSeconds(model, ctx, cfg, 4);
        EXPECT_NEAR(sum, scalar, 1e-9 * scalar) << "chunk=" << chunk;
    }
}

// --- Sequence submission on the sim core. ----------------------------

TEST(StagePipeline, SequencePipelinesElementsAcrossStages)
{
    sim::EventQueue q;
    sim::Device s0("s0"), s1("s1");
    sim::StagePipeline pipe({&s0, &s1});

    auto element = [] {
        std::vector<sim::WorkItem> row(2);
        row[0].seconds = 1.0;
        row[1].seconds = 1.0;
        return row;
    };
    double done = -1.0;
    pipe.submitSequence(q, {element(), element(), element()}, 0.0,
                        [&](double t) { done = t; });
    q.runAll();
    // Element k enters stage 0 at k and stage 1 at k+1: the last of
    // three finishes at 4, not at 6 as a serialized schedule would.
    EXPECT_DOUBLE_EQ(done, 4.0);
    EXPECT_DOUBLE_EQ(s0.busySeconds(), 3.0);
    EXPECT_DOUBLE_EQ(s1.busySeconds(), 3.0);
}

TEST(StagePipeline, SequenceLeavesFifoGapsForInterleaving)
{
    sim::EventQueue q;
    sim::Device s0("s0");
    sim::StagePipeline pipe({&s0});

    double seq_done = -1.0, other_done = -1.0;
    std::vector<sim::WorkItem> a(1), b(1);
    a[0].seconds = 1.0;
    b[0].seconds = 1.0;
    pipe.submitSequence(q, {a, b}, 0.0,
                        [&](double t) { seq_done = t; });
    // A latecomer submitted at t=0.5 slots between the two sequence
    // elements, because element 1 is only submitted at element 0's
    // completion event (t=1).
    q.schedule(0.5, [&](double) {
        sim::WorkItem w;
        w.seconds = 0.2;
        s0.submit(q, w, 0.5, [&](double t) { other_done = t; });
    });
    q.runAll();
    EXPECT_DOUBLE_EQ(other_done, 1.2);
    EXPECT_DOUBLE_EQ(seq_done, 2.2);
}

TEST(StagePipeline, EmptySequenceCompletesAtReady)
{
    sim::EventQueue q;
    sim::Device s0("s0");
    sim::StagePipeline pipe({&s0});
    double done = -1.0;
    pipe.submitSequence(q, {}, 3.0, [&](double t) { done = t; });
    q.runAll();
    EXPECT_DOUBLE_EQ(done, 3.0);
}

// --- Prefill/decode interference on one stage. -----------------------

TEST(PipelineStage, PrefillChunkOccupiesXpuAndGatesDecodeFc)
{
    PimModuleConfig mcfg;
    PimModuleModel pim(mcfg);
    XpuModel xpu(XpuConfig::neupimsNpu());
    PipelineStage stage("s", pim, &xpu);
    sim::EventQueue q;

    sim::WorkItem chunk;
    chunk.kind = sim::WorkItem::Kind::PrefillChunk;
    chunk.seconds = 1.0;
    double chunk_done = stage.submit(q, chunk, 0.0);
    // The chunk occupies the xPU timeline, not the serializing PIM.
    EXPECT_DOUBLE_EQ(chunk_done, 1.0);
    EXPECT_DOUBLE_EQ(stage.busyUntil(), 0.0);
    ASSERT_NE(stage.xpu(), nullptr);
    EXPECT_DOUBLE_EQ(stage.xpu()->busyUntil(), 1.0);

    // A decode item whose FC share queues behind the chunk is gated:
    // FC runs [1.0, 1.4] on the xPU, so the stage completes at 1.4
    // instead of its nominal 0.5.
    sim::WorkItem decode;
    decode.seconds = 0.5;
    decode.fcSeconds = 0.4;
    double decode_done = stage.submit(q, decode, 0.0);
    EXPECT_DOUBLE_EQ(decode_done, 1.4);
    EXPECT_DOUBLE_EQ(stage.busyUntil(), 1.4);
    q.runAll();
}

TEST(PipelineStage, PrefillChunkFallsBackToPimWithoutXpu)
{
    PimModuleConfig mcfg;
    PimModuleModel pim(mcfg);
    PipelineStage stage("s", pim, nullptr);
    sim::EventQueue q;
    sim::WorkItem chunk;
    chunk.kind = sim::WorkItem::Kind::PrefillChunk;
    chunk.seconds = 2.0;
    EXPECT_DOUBLE_EQ(stage.submit(q, chunk, 0.0), 2.0);
    EXPECT_DOUBLE_EQ(stage.busyUntil(), 2.0);
    q.runAll();
}

// --- Per-stage layer remainder. --------------------------------------

TEST(StageLayersSplit, LastStageAbsorbsRemainder)
{
    // Even split: unchanged.
    for (unsigned s = 0; s < 4; ++s)
        EXPECT_EQ(stageLayers(32, 4, s), 8u);
    // Remainder goes to the last stage and counts sum to nLayers.
    EXPECT_EQ(stageLayers(33, 2, 0), 16u);
    EXPECT_EQ(stageLayers(33, 2, 1), 17u);
    EXPECT_EQ(stageLayers(80, 32, 0), 2u);
    EXPECT_EQ(stageLayers(80, 32, 31), 18u);
    unsigned total = 0;
    for (unsigned s = 0; s < 32; ++s)
        total += stageLayers(80, 32, s);
    EXPECT_EQ(total, 80u);
    // Oversubscribed pipelines keep one layer per stage.
    EXPECT_EQ(stageLayers(2, 4, 0), 1u);
    EXPECT_EQ(stageLayers(2, 4, 3), 1u);
}

TEST(StageLayersSplit, RemainderLayersAreChargedByBothModels)
{
    // Pre-remainder handling, a 33-layer model on PP=2 was billed as
    // 32 layers (16 per stage); now the extra layer must cost time
    // in both step models.
    auto model32 = LlmConfig::llm7b(true);
    auto model33 = model32;
    model33.nLayers = 33;
    std::vector<Request> reqs;
    for (RequestId i = 0; i < 8; ++i)
        reqs.push_back({i, 20000, 8});

    for (StepModel sm : {StepModel::Analytic, StepModel::EventDriven}) {
        auto cluster = ClusterConfig::centLike(model32);
        cluster.nModules = 2;
        cluster.plan = ParallelPlan{1, 2};
        applyOptions(cluster, PimphonyOptions::all());
        EngineOptions opts;
        opts.allocator = AllocatorKind::LazyChunk;
        opts.stepModel = sm;
        auto r32 = ServingEngine(cluster, model32, reqs, opts).run();
        auto r33 = ServingEngine(cluster, model33, reqs, opts).run();
        EXPECT_EQ(r32.completedRequests, 8u) << stepModelName(sm);
        EXPECT_EQ(r33.completedRequests, 8u) << stepModelName(sm);
        EXPECT_LT(r33.tokensPerSecond, r32.tokensPerSecond)
            << stepModelName(sm);
    }
}

// --- Engine: Prefilling state, TTFT, interference. --------------------

TEST(ChunkedPrefill, TtftReportedAndMonotoneInContext)
{
    auto model = LlmConfig::llm7b(true);
    auto cluster = ClusterConfig::neupimsLike(model);
    applyOptions(cluster, PimphonyOptions::all());

    double prev_ttft = 0.0;
    for (Tokens ctx : {Tokens{8000}, Tokens{16000}, Tokens{32000},
                       Tokens{64000}}) {
        std::vector<Request> reqs{{0, ctx, 4}};
        EngineOptions opts;
        opts.allocator = AllocatorKind::LazyChunk;
        opts.stepModel = StepModel::EventDriven;
        opts.prefillChunkTokens = 2048;
        auto r = ServingEngine(cluster, model, reqs, opts).run();
        ASSERT_EQ(r.completedRequests, 1u) << "ctx=" << ctx;
        ASSERT_EQ(r.firstTokenLatency.count(0), 1u) << "ctx=" << ctx;
        double ttft = r.firstTokenLatency.at(0);
        EXPECT_DOUBLE_EQ(ttft, r.avgFirstTokenSeconds);
        EXPECT_GT(ttft, 0.0);
        // Prefill work is on the clock now: TTFT exceeds the prefill
        // charge and never shrinks as the context grows.
        EXPECT_GT(ttft, r.prefillSeconds * 0.99) << "ctx=" << ctx;
        EXPECT_GE(ttft, prev_ttft) << "ctx=" << ctx;
        prev_ttft = ttft;
    }
}

TEST(ChunkedPrefill, SmallerChunksCutDecodeStallAtSamePrefillCost)
{
    auto model = LlmConfig::llm7b(true);
    auto cluster = ClusterConfig::neupimsLike(model);
    applyOptions(cluster, PimphonyOptions::all());

    // Arrivals at ~1.1x the xPU's prefill capacity (scalar prefill
    // of a 30k context is ~0.74 s on the 4-NPU group): prefill
    // chunks contend with decode FC on every cycle, which is the
    // regime continuous batching exists for.
    std::vector<Request> reqs;
    for (RequestId i = 0; i < 32; ++i)
        reqs.push_back({i, 30000, 64});
    auto timed = poissonArrivals(reqs, 1.5, 17);

    auto run = [&](Tokens chunk_tokens, bool scalar) {
        EngineOptions opts;
        opts.allocator = AllocatorKind::LazyChunk;
        opts.stepModel = StepModel::EventDriven;
        opts.prefillChunkTokens = chunk_tokens;
        opts.chargePrefill = scalar;
        return ServingEngine(cluster, model, timed, opts).run();
    };

    auto scalar = run(0, true);       // unchunked scalar charge
    auto coarse = run(30000, false);  // one chunk per request
    auto fine = run(1024, false);     // fine-grained interleaving

    ASSERT_EQ(scalar.completedRequests, 32u);
    ASSERT_EQ(coarse.completedRequests, 32u);
    ASSERT_EQ(fine.completedRequests, 32u);

    // Chunking changes the layout of prefill in time, not its cost:
    // the charged total matches the scalar model within 1%.
    ASSERT_GT(scalar.prefillSeconds, 0.0);
    EXPECT_NEAR(coarse.prefillSeconds / scalar.prefillSeconds, 1.0, 0.01);
    EXPECT_NEAR(fine.prefillSeconds / scalar.prefillSeconds, 1.0, 0.01);

    // Decode tokens stall behind whole-context chunks; shrinking the
    // chunk lets decode FC slot between chunks and cuts the tail.
    ASSERT_GT(coarse.p95TokenGapSeconds, 0.0);
    EXPECT_LT(fine.p95TokenGapSeconds, 0.5 * coarse.p95TokenGapSeconds);
    EXPECT_LT(fine.avgTokenGapSeconds, coarse.avgTokenGapSeconds);
}

TEST(ChunkedPrefill, ChunksPipelineAcrossPpStages)
{
    // On a PP=2 deployment a single whole-context chunk crosses the
    // two stages back to back (~2x the scalar prefill), while fine
    // chunks pipeline — chunk k+1 on stage 0 under chunk k on stage
    // 1 — and approach the scalar time. This is the chunked-prefill
    // speedup the NeuPIMs-like prefillEngines() model assumes.
    auto model = LlmConfig::llm7b(true);
    auto cluster = ClusterConfig::neupimsLike(model);
    cluster.plan = ParallelPlan{2, 2};
    applyOptions(cluster, PimphonyOptions::all());
    std::vector<Request> reqs{{0, 32000, 4}};

    auto run = [&](Tokens chunk_tokens) {
        EngineOptions opts;
        opts.allocator = AllocatorKind::LazyChunk;
        opts.stepModel = StepModel::EventDriven;
        opts.prefillChunkTokens = chunk_tokens;
        return ServingEngine(cluster, model, reqs, opts).run();
    };
    auto coarse = run(32000);
    auto fine = run(512);

    ASSERT_EQ(coarse.completedRequests, 1u);
    ASSERT_EQ(fine.completedRequests, 1u);
    ASSERT_GT(coarse.prefillSeconds, 0.0);
    EXPECT_DOUBLE_EQ(fine.prefillSeconds, coarse.prefillSeconds);
    // Coarse: both stages in series; fine: pipelined overlap.
    EXPECT_GT(coarse.avgFirstTokenSeconds,
              1.8 * coarse.prefillSeconds);
    EXPECT_LT(fine.avgFirstTokenSeconds, 1.2 * fine.prefillSeconds);
    EXPECT_GT(fine.avgFirstTokenSeconds, fine.prefillSeconds);
}

TEST(ChunkedPrefill, AnalyticFallsBackToScalarCharge)
{
    auto model = LlmConfig::llm7b(true);
    auto cluster = ClusterConfig::neupimsLike(model);
    applyOptions(cluster, PimphonyOptions::all());
    std::vector<Request> reqs;
    for (RequestId i = 0; i < 6; ++i)
        reqs.push_back({i, 30000, 12});

    EngineOptions opts;
    opts.allocator = AllocatorKind::LazyChunk;
    opts.stepModel = StepModel::Analytic;
    opts.prefillChunkTokens = 2048;
    auto chunked = ServingEngine(cluster, model, reqs, opts).run();

    opts.prefillChunkTokens = 0;
    opts.chargePrefill = true;
    auto charged = ServingEngine(cluster, model, reqs, opts).run();

    // The analytic model keeps the scalar charge under the chunk
    // knob: bit-identical to chargePrefill.
    EXPECT_DOUBLE_EQ(chunked.simulatedSeconds, charged.simulatedSeconds);
    EXPECT_DOUBLE_EQ(chunked.tokensPerSecond, charged.tokensPerSecond);
    EXPECT_DOUBLE_EQ(chunked.prefillSeconds, charged.prefillSeconds);
    EXPECT_EQ(chunked.completedRequests, charged.completedRequests);
}

TEST(ChunkedPrefill, PimOnlyPrefillsOnPnmWithoutTouchingDecode)
{
    // In the PIM-only system prefill runs on the PNM engines; decode
    // never uses the xPU timeline, so chunked prefill must not slow
    // steady-state decode, only defer each request's first token. A
    // single request keeps the decode batch (and so the cycle time)
    // identical between the runs.
    auto model = LlmConfig::llm7b(true);
    auto cluster = ClusterConfig::centLike(model);
    applyOptions(cluster, PimphonyOptions::all());
    std::vector<Request> reqs{{0, 20000, 16}};

    EngineOptions opts;
    opts.allocator = AllocatorKind::LazyChunk;
    opts.stepModel = StepModel::EventDriven;
    auto plain = ServingEngine(cluster, model, reqs, opts).run();
    opts.prefillChunkTokens = 4096;
    auto chunked = ServingEngine(cluster, model, reqs, opts).run();

    EXPECT_EQ(chunked.completedRequests, 1u);
    EXPECT_GT(chunked.prefillSeconds, 0.0);
    EXPECT_GT(chunked.avgFirstTokenSeconds, plain.avgFirstTokenSeconds);
    // Steady-state decode pace is untouched by PNM-side prefill.
    EXPECT_NEAR(chunked.avgTokenGapSeconds, plain.avgTokenGapSeconds,
                1e-9);
}

} // namespace
} // namespace pimphony
