/**
 * @file
 * Prefix-sharing tests: the CoW prefix tree over the paged KV
 * allocator (alloc/prefix_cache.hh), the warm-prefill planner
 * conservation laws, the engine's warm-admission accounting, session
 * KV retention across turns, fleet prefix-affinity routing, and the
 * bit-identity contract when caching is disabled.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "alloc/prefix_cache.hh"
#include "system/engine.hh"
#include "system/fleet.hh"
#include "system/prefill.hh"
#include "workload/spec.hh"

namespace pimphony {
namespace {

// 128 KiB per token, 1 MiB chunks: exactly 8 tokens per chunk (the
// llm7b GQA rate, so the unit fixtures match the engine fixtures).
constexpr Bytes kBpt = 128 * 1024;
constexpr Tokens kTmax = 32768;

PrefixCacheOptions
cacheOn(PrefixEvictPolicy evict = PrefixEvictPolicy::Lru,
        double max_share = 1.0)
{
    PrefixCacheOptions o;
    o.enabled = true;
    o.evict = evict;
    o.maxShare = max_share;
    return o;
}

// --- PrefixCache unit behavior. ----------------------------------------

TEST(PrefixCache, PublishAcquireReleaseLifecycle)
{
    LazyChunkAllocator a(64_MiB, kBpt, kTmax, 1_MiB);
    PrefixCache cache(a, cacheOn());
    std::uint64_t key = PrefixCache::prefixKey(0xBEEF);

    EXPECT_EQ(cache.peek(key), 0u);
    ASSERT_TRUE(cache.publish(key, 0, 0, 16, 16, 0.0, 0,
                              /*hold=*/false, /*ready=*/true));
    EXPECT_TRUE(cache.knows(key));
    EXPECT_EQ(cache.entryCount(), 1u);
    EXPECT_EQ(cache.heldChunks(), 2u); // 16 tokens = 2 chunks
    // Custody is real: the tree's chunks are the allocator's.
    EXPECT_EQ(a.reservedBytes(), cache.heldBytes());

    EXPECT_EQ(cache.peek(key), 16u);
    EXPECT_EQ(cache.refsOf(key), 0u);
    EXPECT_EQ(cache.acquire(key, 1.0, 0), 16u);
    EXPECT_EQ(cache.refsOf(key), 1u);
    EXPECT_EQ(cache.consumersOf(key), 1u);
    // Hits are counted at admission commit (noteHit), not inside
    // acquire: a pinned admission may bounce off budget or headroom
    // checks and re-acquire on every retry.
    EXPECT_EQ(cache.stats().hits, 0u);
    cache.noteHit();
    EXPECT_EQ(cache.stats().hits, 1u);
    cache.releaseConsumer(key);
    EXPECT_EQ(cache.refsOf(key), 0u);
    EXPECT_EQ(cache.consumersOf(key), 0u);
    EXPECT_TRUE(cache.knows(key)); // ready entries outlive consumers

    // A duplicate publish is refused without disturbing the entry.
    EXPECT_FALSE(cache.publish(key, 0, 0, 16, 16, 2.0, 0, false, true));
    EXPECT_EQ(cache.entryCount(), 1u);
}

TEST(PrefixCache, CowTailIsNotShareable)
{
    LazyChunkAllocator a(64_MiB, kBpt, kTmax, 1_MiB);
    PrefixCache cache(a, cacheOn());
    // 12 tokens back 2 chunks, but only the 8 tokens of the full
    // chunk are shareable: the partial tail is the CoW copy the
    // consumer re-prefills itself.
    EXPECT_EQ(cache.floorChunkTokens(12), 8u);
    EXPECT_EQ(cache.floorChunkTokens(8), 8u);
    EXPECT_EQ(cache.floorChunkTokens(7), 0u);
    std::uint64_t key = PrefixCache::prefixKey(0x12);
    ASSERT_TRUE(cache.publish(key, 0, 0, 12, 12, 0.0, 0, false, true));
    EXPECT_EQ(cache.heldChunks(), 2u);
    EXPECT_EQ(cache.acquire(key, 1.0, 0), 8u);
}

TEST(PrefixCache, NotReadyUntilMarked)
{
    LazyChunkAllocator a(64_MiB, kBpt, kTmax, 1_MiB);
    PrefixCache cache(a, cacheOn());
    std::uint64_t key = PrefixCache::prefixKey(0x34);
    // Publisher protocol: entry exists but is unconsumable while the
    // publisher's chunked prefill is in flight.
    ASSERT_TRUE(cache.publish(key, 0, 0, 16, 16, 0.0, 0,
                              /*hold=*/true, /*ready=*/false));
    EXPECT_TRUE(cache.knows(key));
    EXPECT_EQ(cache.peek(key), 0u);
    EXPECT_EQ(cache.acquire(key, 1.0, 0), 0u);
    // The publisher's hold is structural, not a consumer ref.
    EXPECT_EQ(cache.refsOf(key), 1u);
    EXPECT_EQ(cache.consumersOf(key), 0u);
    cache.markReady(key, 2.0);
    EXPECT_EQ(cache.peek(key), 16u);
    cache.release(key); // publisher done; ready entry persists
    EXPECT_TRUE(cache.knows(key));
}

TEST(PrefixCache, AbandonedUnreadyEntryIsErased)
{
    LazyChunkAllocator a(64_MiB, kBpt, kTmax, 1_MiB);
    PrefixCache cache(a, cacheOn());
    std::uint64_t key = PrefixCache::prefixKey(0x56);
    ASSERT_TRUE(cache.publish(key, 0, 0, 16, 16, 0.0, 0,
                              /*hold=*/true, /*ready=*/false));
    // The publisher is preempted before its prefill finishes: the
    // entry can never be consumed, so dropping the hold erases it
    // and returns the chunks.
    cache.release(key);
    EXPECT_FALSE(cache.knows(key));
    EXPECT_EQ(cache.heldChunks(), 0u);
    EXPECT_EQ(a.reservedBytes(), 0u);
}

TEST(PrefixCache, SessionChainHoldsParentAlive)
{
    LazyChunkAllocator a(64_MiB, kBpt, kTmax, 1_MiB);
    PrefixCache cache(a, cacheOn());
    std::uint64_t parent = PrefixCache::sessionKey(7, 0);
    std::uint64_t child = PrefixCache::sessionKey(7, 1);
    ASSERT_TRUE(
        cache.publish(parent, 0, 0, 16, 16, 0.0, 0, false, true));
    // Turn 1 retained 8 delta tokens on top of turn 0's 16.
    ASSERT_TRUE(
        cache.publish(child, parent, 16, 24, 8, 1.0, 0, false, true));
    EXPECT_EQ(cache.peek(child), 24u);
    EXPECT_EQ(cache.refsOf(parent), 1u); // the child's ref
    // Structural: the child's ref must not dilute a consumer's
    // fractional tenant charge.
    EXPECT_EQ(cache.consumersOf(parent), 0u);

    // The parent is pinned by its child: eviction pressure can only
    // take the (idle leaf) child, which unpins the parent. Demanding
    // more than capacity fails, but only after draining the tree in
    // leaf-to-root order.
    EXPECT_FALSE(cache.evictFor(65_MiB));
    EXPECT_FALSE(cache.knows(child));
    EXPECT_FALSE(cache.knows(parent));
    EXPECT_EQ(cache.stats().evictions, 2u);
    EXPECT_EQ(a.reservedBytes(), 0u);
}

TEST(PrefixCache, LruEvictsOldestIdleEntry)
{
    // 4-chunk module; three 1-chunk entries and a consumer that
    // needs 2 chunks forces one eviction.
    LazyChunkAllocator a(4_MiB, kBpt, kTmax, 1_MiB);
    PrefixCache cache(a, cacheOn(PrefixEvictPolicy::Lru));
    std::uint64_t ka = PrefixCache::prefixKey(0xA);
    std::uint64_t kb = PrefixCache::prefixKey(0xB);
    std::uint64_t kc = PrefixCache::prefixKey(0xC);
    ASSERT_TRUE(cache.publish(ka, 0, 0, 8, 8, 1.0, 0, false, true));
    ASSERT_TRUE(cache.publish(kb, 0, 0, 8, 8, 2.0, 0, false, true));
    ASSERT_TRUE(cache.publish(kc, 0, 0, 8, 8, 3.0, 0, false, true));
    // Touch A at t=4: B becomes the least recently used.
    EXPECT_EQ(cache.acquire(ka, 4.0, 0), 8u);
    cache.releaseConsumer(ka);

    ASSERT_TRUE(cache.evictFor(3_MiB));
    EXPECT_TRUE(cache.knows(ka));
    EXPECT_FALSE(cache.knows(kb));
    EXPECT_FALSE(cache.knows(kc));
    EXPECT_EQ(cache.stats().evictions, 2u);
}

TEST(PrefixCache, TierWeightedEvictsLeastCriticalFirst)
{
    LazyChunkAllocator a(4_MiB, kBpt, kTmax, 1_MiB);
    PrefixCache cache(a, cacheOn(PrefixEvictPolicy::TierWeighted));
    std::uint64_t hot = PrefixCache::prefixKey(0x1);
    std::uint64_t cold = PrefixCache::prefixKey(0x2);
    // The tier-0 (critical) entry is older than the tier-2 one; LRU
    // would take it, tier weighting protects it.
    ASSERT_TRUE(cache.publish(hot, 0, 0, 8, 8, 1.0, 0, false, true));
    ASSERT_TRUE(cache.publish(cold, 0, 0, 8, 8, 5.0, 2, false, true));
    ASSERT_TRUE(cache.evictFor(3_MiB));
    EXPECT_TRUE(cache.knows(hot));
    EXPECT_FALSE(cache.knows(cold));
}

TEST(PrefixCache, ConsumersPinEntriesAgainstEviction)
{
    LazyChunkAllocator a(2_MiB, kBpt, kTmax, 1_MiB);
    PrefixCache cache(a, cacheOn());
    std::uint64_t key = PrefixCache::prefixKey(0x9);
    ASSERT_TRUE(cache.publish(key, 0, 0, 8, 8, 0.0, 0, false, true));
    ASSERT_EQ(cache.acquire(key, 1.0, 0), 8u);
    // Both chunks are spoken for (1 cache + 1 would-be consumer):
    // nothing evictable, so the headroom request must fail...
    EXPECT_FALSE(cache.evictFor(2_MiB));
    EXPECT_TRUE(cache.knows(key));
    // ...until the consumer lets go.
    cache.releaseConsumer(key);
    EXPECT_TRUE(cache.evictFor(2_MiB));
    EXPECT_FALSE(cache.knows(key));
}

TEST(PrefixCache, MaxShareCapsCustody)
{
    // 8-chunk module capped at 25%: the tree may hold 2 chunks.
    LazyChunkAllocator a(8_MiB, kBpt, kTmax, 1_MiB);
    PrefixCache cache(a, cacheOn(PrefixEvictPolicy::Lru, 0.25));
    std::uint64_t k1 = PrefixCache::prefixKey(0x11);
    std::uint64_t k2 = PrefixCache::prefixKey(0x22);
    // 3 chunks can never fit under the cap.
    EXPECT_FALSE(cache.publish(k1, 0, 0, 24, 24, 0.0, 0, false, true));
    // 2 chunks fit; a second 1-chunk publish evicts to make room.
    ASSERT_TRUE(cache.publish(k1, 0, 0, 16, 16, 1.0, 0, false, true));
    ASSERT_TRUE(cache.publish(k2, 0, 0, 8, 8, 2.0, 0, false, true));
    EXPECT_FALSE(cache.knows(k1));
    EXPECT_TRUE(cache.knows(k2));
    EXPECT_LE(cache.heldChunks(), 2u);
}

TEST(PrefixCache, ClearReturnsEveryChunk)
{
    LazyChunkAllocator a(64_MiB, kBpt, kTmax, 1_MiB);
    PrefixCache cache(a, cacheOn());
    ASSERT_TRUE(cache.publish(PrefixCache::prefixKey(1), 0, 0, 16, 16,
                              0.0, 0, false, true));
    ASSERT_TRUE(cache.publish(PrefixCache::prefixKey(2), 0, 0, 8, 8,
                              0.0, 0, false, true));
    ASSERT_TRUE(a.tryAdmit(1000, 8)); // a bystander request
    cache.clear();
    EXPECT_EQ(cache.entryCount(), 0u);
    EXPECT_EQ(cache.heldChunks(), 0u);
    // Only the bystander's chunk remains reserved.
    EXPECT_EQ(a.reservedBytes(), a.chunkBytes());
}

TEST(PrefixCache, KeysAreDistinctAndNonzero)
{
    EXPECT_NE(PrefixCache::prefixKey(0), 0u);
    EXPECT_NE(PrefixCache::sessionKey(0, 0), 0u);
    EXPECT_NE(PrefixCache::prefixKey(0xBEEF),
              PrefixCache::sessionKey(0xBEEF, 0));
    EXPECT_NE(PrefixCache::sessionKey(1, 2),
              PrefixCache::sessionKey(2, 1));
    EXPECT_EQ(prefixEvictPolicyName(PrefixEvictPolicy::Lru), "lru");
    EXPECT_EQ(prefixEvictPolicyName(PrefixEvictPolicy::TierWeighted),
              "tier-weighted");
}

// --- Warm-prefill planner conservation. --------------------------------

TEST(PrefillFrom, ZeroCachedReducesToColdPlanner)
{
    auto model = LlmConfig::llm7b(true);
    auto cluster = ClusterConfig::neupimsLike(model);
    EXPECT_EQ(prefillSecondsFrom(model, 0, 4096, cluster.xpu, 4),
              prefillSeconds(model, 4096, cluster.xpu, 4));
    auto cold = prefillChunks(model, 4096, 512);
    auto from = prefillChunksFrom(model, 0, 4096, 512);
    ASSERT_EQ(cold.size(), from.size());
    for (std::size_t i = 0; i < cold.size(); ++i) {
        EXPECT_EQ(cold[i].firstToken, from[i].firstToken);
        EXPECT_EQ(cold[i].tokens, from[i].tokens);
        EXPECT_EQ(cold[i].flops, from[i].flops);
    }
}

TEST(PrefillFrom, WarmPlusCachedConservesColdCharge)
{
    auto model = LlmConfig::llm7b(true);
    auto cluster = ClusterConfig::neupimsLike(model);
    for (Tokens cached : {Tokens{512}, Tokens{2048}, Tokens{4095}}) {
        double cold = prefillSeconds(model, 4096, cluster.xpu, 4);
        double head = prefillSeconds(model, cached, cluster.xpu, 4);
        double warm =
            prefillSecondsFrom(model, cached, 4096, cluster.xpu, 4);
        EXPECT_DOUBLE_EQ(head + warm, cold) << "cached=" << cached;
        EXPECT_GT(warm, 0.0);
        EXPECT_LT(warm, cold);
    }
    // Fully (or over-) cached context charges nothing.
    EXPECT_EQ(prefillSecondsFrom(model, 4096, 4096, cluster.xpu, 4),
              0.0);
    EXPECT_EQ(prefillSecondsFrom(model, 5000, 4096, cluster.xpu, 4),
              0.0);
}

TEST(PrefillFrom, ChunkFlopsAndSecondsSumToTheDelta)
{
    auto model = LlmConfig::llm7b(true);
    auto cluster = ClusterConfig::neupimsLike(model);
    auto chunks = prefillChunksFrom(model, 1536, 4096, 512);
    double flops = 0.0;
    Tokens tokens = 0;
    for (const auto &c : chunks) {
        flops += c.flops;
        tokens += c.tokens;
    }
    EXPECT_EQ(tokens, 4096u - 1536u);
    EXPECT_EQ(chunks.front().firstToken, 1536u);
    EXPECT_DOUBLE_EQ(flops, prefillFlops(model, 4096) -
                                prefillFlops(model, 1536));
    auto secs =
        prefillChunkSecondsFrom(model, 1536, 4096, 512, cluster.xpu, 4);
    ASSERT_EQ(secs.size(), chunks.size());
    double total = 0.0;
    for (double s : secs)
        total += s;
    EXPECT_DOUBLE_EQ(
        total, prefillSecondsFrom(model, 1536, 4096, cluster.xpu, 4));
}

// --- Engine integration. -----------------------------------------------

LlmConfig
testModel()
{
    return LlmConfig::llm7b(true);
}

ClusterConfig
testCluster(const LlmConfig &model)
{
    auto cluster = ClusterConfig::neupimsLike(model);
    cluster.plan = ParallelPlan{cluster.nModules / 2, 2};
    applyOptions(cluster, PimphonyOptions::all());
    return cluster;
}

EngineOptions
cachingOptions(bool enabled)
{
    EngineOptions opts;
    opts.allocator = AllocatorKind::LazyChunk;
    opts.stepModel = StepModel::EventDriven;
    opts.prefillChunkTokens = 2048;
    opts.chargePrefill = true;
    opts.prefixCache.enabled = enabled;
    return opts;
}

/**
 * N requests sharing one declared 2048-token prefix, spaced far
 * enough apart that the publisher's prefill completes before the
 * followers admit (so every follower is a warm hit).
 */
std::vector<TimedRequest>
sharedPrefixTrace(std::size_t n, double gap_seconds = 2.0)
{
    std::vector<TimedRequest> trace;
    trace.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        Request r(static_cast<RequestId>(i), 2048, 16);
        r.prefixHash = 0xBEEF;
        r.prefixTokens = 2048;
        trace.push_back({r, static_cast<double>(i) * gap_seconds});
    }
    return trace;
}

TEST(PrefixEngine, WarmFollowersSkipTheCachedPrefill)
{
    auto model = testModel();
    auto cluster = testCluster(model);
    auto trace = sharedPrefixTrace(6);

    ServingEngine cold(cluster, model, trace, cachingOptions(false));
    auto off = cold.run();
    ServingEngine warm(cluster, model, trace, cachingOptions(true));
    auto on = warm.run();

    EXPECT_EQ(on.completedRequests, 6u);
    // Request 0 publishes (a miss), requests 1..5 hit.
    EXPECT_EQ(on.prefixHits, 5u);
    EXPECT_EQ(on.prefixMisses, 1u);
    EXPECT_DOUBLE_EQ(on.prefixHitRate, 5.0 / 6.0);
    // 2048 tokens x 5 warm admissions, chunk-aligned so the whole
    // prefix is shareable.
    EXPECT_EQ(on.prefixCachedTokens, 5u * 2048u);
    EXPECT_GT(on.savedPrefillSeconds, 0.0);
    EXPECT_LT(on.prefillSeconds, off.prefillSeconds);
    EXPECT_DOUBLE_EQ(on.prefillSeconds + on.savedPrefillSeconds,
                     off.prefillSeconds);
    EXPECT_GT(on.sharedKvPeakBytes, 0u);

    // Every warm follower's TTFT beats its cold counterpart.
    for (RequestId id = 1; id < 6; ++id) {
        ASSERT_TRUE(on.firstTokenLatency.count(id));
        EXPECT_LT(on.firstTokenLatency.at(id),
                  off.firstTokenLatency.at(id))
            << "request " << id;
    }
    // The cache-off run never touches the prefix metrics.
    EXPECT_EQ(off.prefixHits, 0u);
    EXPECT_EQ(off.prefixMisses, 0u);
    EXPECT_EQ(off.prefixCachedTokens, 0u);
    EXPECT_EQ(off.savedPrefillSeconds, 0.0);
}

TEST(PrefixEngine, AllocatedEqualsSharedPlusUnique)
{
    auto model = testModel();
    auto cluster = testCluster(model);
    auto trace = sharedPrefixTrace(4);
    ServingEngine engine(cluster, model, trace, cachingOptions(true));
    auto r = engine.run();
    ASSERT_EQ(r.completedRequests, 4u);

    // After the run every request has released its unique chunks, so
    // the allocator's entire reservation is the tree's custody: the
    // shared + unique split covers the allocation exactly.
    const PrefixCache *cache = engine.prefixCache();
    ASSERT_NE(cache, nullptr);
    EXPECT_EQ(engine.allocatorView().reservedBytes(),
              cache->heldBytes());
    EXPECT_GT(cache->heldBytes(), 0u);
    // Occupancy is sampled at admission instants; the single
    // 2048-token entry is the entire shared footprint, so its peak
    // is exact.
    EXPECT_EQ(r.sharedKvPeakBytes, 2048ull * model.kvBytesPerToken());
    EXPECT_LE(r.sharedKvPeakBytes,
              engine.allocatorView().capacity());
}

TEST(PrefixEngine, SessionTurnsPrefillOnlyTheirDelta)
{
    auto model = testModel();
    auto cluster = testCluster(model);

    // One 3-turn session, explicit successor book: turn k+1 carries
    // the whole conversation so far as context.
    auto turn = [](RequestId id, Tokens ctx, unsigned k) {
        Request r(id, ctx, 16);
        r.session = 1;
        r.turn = k;
        return r;
    };
    BuiltWorkload built;
    built.initial = {{turn(0, 2048, 0), 0.0}};
    built.sessions.emplace(0, SessionTurn{turn(1, 2064, 1), 0.5});
    built.sessions.emplace(1, SessionTurn{turn(2, 2080, 2), 0.5});

    auto run = [&](bool enabled) {
        ServingEngine engine(cluster, model, built.initial,
                             cachingOptions(enabled));
        engine.declareSessionTurns(built.sessions);
        return engine.run();
    };
    auto off = run(false);
    auto on = run(true);

    EXPECT_EQ(on.completedRequests, 3u);
    // Turns 1 and 2 reuse the retained KV of their predecessor.
    EXPECT_EQ(on.prefixHits, 2u);
    EXPECT_GT(on.savedPrefillSeconds, 0.0);
    EXPECT_GT(on.prefixCachedTokens, 0u);
    EXPECT_LT(on.prefillSeconds, off.prefillSeconds);
    // The successor turns complete earlier warm than cold.
    EXPECT_LT(on.completionSeconds.at(2), off.completionSeconds.at(2));
}

TEST(PrefixEngine, DisabledIsBitIdenticalToBaseline)
{
    auto model = testModel();
    auto cluster = testCluster(model);

    // A workload exercising sessions, classes, and declared prefixes
    // (the stamps ride along even when nobody reads them).
    WorkloadSpec spec;
    spec.count = 24;
    spec.length.kind = LengthSourceKind::Pairs;
    spec.length.pairs = {{2000, 16}, {4000, 16}};
    spec.arrival.kind = ArrivalKind::Poisson;
    spec.arrival.ratePerSecond = 8.0;
    spec.session.turns = 2;
    spec.session.thinkMeanSeconds = 0.2;
    spec.prefix.share = 0.5;
    spec.prefix.tokens = 1024;
    auto built = buildWorkload(spec, 77);

    EngineOptions base;
    base.allocator = AllocatorKind::LazyChunk;
    base.stepModel = StepModel::EventDriven;
    base.prefillChunkTokens = 2048;
    auto disabled = base;
    disabled.prefixCache.enabled = false;
    disabled.prefixCache.evict = PrefixEvictPolicy::TierWeighted;
    disabled.prefixCache.maxShare = 0.1;

    auto run = [&](const EngineOptions &opts) {
        ServingEngine engine(cluster, model, built.initial, opts);
        engine.declareSessionTurns(built.sessions);
        return engine.run();
    };
    auto a = run(base);
    auto b = run(disabled);
    ASSERT_GT(a.completedRequests, 0u);
    EXPECT_EQ(a.tokensPerSecond, b.tokensPerSecond);
    EXPECT_EQ(a.simulatedSeconds, b.simulatedSeconds);
    EXPECT_EQ(a.generatedTokens, b.generatedTokens);
    EXPECT_EQ(a.completedRequests, b.completedRequests);
    EXPECT_EQ(a.preemptions, b.preemptions);
    EXPECT_EQ(a.simEvents, b.simEvents);
    EXPECT_EQ(a.avgRequestLatency, b.avgRequestLatency);
    EXPECT_EQ(a.avgFirstTokenSeconds, b.avgFirstTokenSeconds);
    EXPECT_EQ(a.avgTokenGapSeconds, b.avgTokenGapSeconds);
    EXPECT_EQ(a.firstTokenLatency, b.firstTokenLatency);
    EXPECT_EQ(a.completionSeconds, b.completionSeconds);
    EXPECT_EQ(b.prefixHits, 0u);
    EXPECT_EQ(b.prefixMisses, 0u);
}

TEST(PrefixEngine, RunTwiceIsBitIdentical)
{
    auto model = testModel();
    auto cluster = testCluster(model);
    auto trace = sharedPrefixTrace(6, 0.25); // overlapping admissions
    auto run = [&]() {
        ServingEngine engine(cluster, model, trace,
                             cachingOptions(true));
        return engine.run();
    };
    auto a = run();
    auto b = run();
    EXPECT_EQ(a.simulatedSeconds, b.simulatedSeconds);
    EXPECT_EQ(a.simEvents, b.simEvents);
    EXPECT_EQ(a.prefixHits, b.prefixHits);
    EXPECT_EQ(a.prefixMisses, b.prefixMisses);
    EXPECT_EQ(a.prefixCachedTokens, b.prefixCachedTokens);
    EXPECT_EQ(a.savedPrefillSeconds, b.savedPrefillSeconds);
    EXPECT_EQ(a.firstTokenLatency, b.firstTokenLatency);
    EXPECT_EQ(a.completionSeconds, b.completionSeconds);
}

TEST(PrefixEngine, FractionalTenantChargeRefundsExactly)
{
    auto model = testModel();
    auto cluster = testCluster(model);
    auto trace = sharedPrefixTrace(6);
    for (auto &timed : trace)
        timed.request.cls.tenant = timed.request.id % 2;

    auto opts = cachingOptions(true);
    opts.tenantBudgets = {{0, 0.5}, {1, 0.5}};
    ServingEngine engine(cluster, model, trace, opts);
    auto r = engine.run();

    // Warm admissions were charged fractionally and refunded from
    // the recorded charge, so the budgets drain back to zero and
    // every request completes.
    EXPECT_EQ(r.completedRequests, 6u);
    EXPECT_GT(r.prefixHits, 0u);
    ASSERT_EQ(r.tenantOccupancy.size(), 2u);
    for (const auto &to : r.tenantOccupancy) {
        EXPECT_GT(to.admittedRequests, 0u);
        EXPECT_LE(to.peakTokenShare, 1.0);
    }
}

TEST(PrefixEngine, RequiresLazyChunkAndEventDriven)
{
    auto model = testModel();
    auto cluster = testCluster(model);
    auto trace = sharedPrefixTrace(2);
    auto static_opts = cachingOptions(true);
    static_opts.allocator = AllocatorKind::Static;
    EXPECT_DEATH(
        ServingEngine(cluster, model, trace, static_opts).run(),
        "LazyChunk");
    auto analytic_opts = cachingOptions(true);
    analytic_opts.stepModel = StepModel::Analytic;
    analytic_opts.prefillChunkTokens = 0;
    EXPECT_DEATH(
        ServingEngine(cluster, model, trace, analytic_opts).run(),
        "event-driven");
}

// --- Workload prefix stamping. -----------------------------------------

TEST(PrefixWorkload, ShareAndPoolControlTheStamps)
{
    WorkloadSpec spec;
    spec.count = 400;
    spec.length.kind = LengthSourceKind::Pairs;
    spec.length.pairs = {{4000, 16}};
    spec.arrival.kind = ArrivalKind::Poisson;
    spec.arrival.ratePerSecond = 50.0;
    spec.prefix.share = 0.5;
    spec.prefix.pool = 2;
    spec.prefix.tokens = 1024;
    auto built = buildWorkload(spec, 11);

    std::size_t stamped = 0;
    std::set<std::uint64_t> hashes;
    for (const auto &timed : built.initial) {
        if (timed.request.prefixHash == 0) {
            EXPECT_EQ(timed.request.prefixTokens, 0u);
            continue;
        }
        ++stamped;
        hashes.insert(timed.request.prefixHash);
        EXPECT_EQ(timed.request.prefixTokens, 1024u);
        EXPECT_LT(timed.request.prefixHash, 1ull << 53);
    }
    // ~half the requests stamped, from a pool of exactly 2 hashes.
    EXPECT_GT(stamped, 120u);
    EXPECT_LT(stamped, 280u);
    EXPECT_EQ(hashes.size(), 2u);

    // share = 0 stamps nothing and perturbs no other draw: the
    // request stream is bit-identical to a prefix-free spec.
    auto base_spec = spec;
    base_spec.prefix = PrefixSpec{};
    auto with = buildWorkload(base_spec, 11);
    auto none_spec = spec;
    none_spec.prefix.share = 0.0;
    none_spec.prefix.tokens = 0;
    auto none = buildWorkload(none_spec, 11);
    ASSERT_EQ(with.initial.size(), none.initial.size());
    for (std::size_t i = 0; i < with.initial.size(); ++i) {
        EXPECT_EQ(with.initial[i].arrivalSeconds,
                  none.initial[i].arrivalSeconds);
        EXPECT_EQ(with.initial[i].request.contextTokens,
                  none.initial[i].request.contextTokens);
        EXPECT_EQ(with.initial[i].request.prefixHash, 0u);
    }
}

// --- Fleet integration. ------------------------------------------------

TEST(PrefixFleet, AffinityRoutesFollowersToTheWarmReplica)
{
    auto model = testModel();
    auto cluster = testCluster(model);
    // Two prefix families, interleaved. Affinity should converge
    // each family onto one replica once its publisher is warm.
    std::vector<TimedRequest> trace;
    for (std::size_t i = 0; i < 12; ++i) {
        Request r(static_cast<RequestId>(i), 2048, 16);
        r.prefixHash = (i % 2) ? 0xAAAA : 0xBBBB;
        r.prefixTokens = 2048;
        // The first two requests arrive close enough together that
        // the second publisher is pushed to the idle replica by
        // load; every later request arrives after both publishers'
        // prefills finished, so warmth decides its route.
        double at = (i < 2) ? 0.1 * static_cast<double>(i)
                            : 1.5 * static_cast<double>(i);
        trace.push_back({r, at});
    }

    FleetOptions fopts;
    fopts.replicas = 2;
    fopts.policy = RoutePolicy::PrefixAffinity;
    fopts.dispatchLatencySeconds = 0.004;
    fopts.engine = cachingOptions(true);
    FleetEngine fleet(cluster, model, trace, fopts);
    auto out = fleet.run();

    EXPECT_EQ(out.aggregate.completedRequests, 12u);
    // The two publishers miss; every follower finds a warm replica.
    EXPECT_EQ(out.aggregate.prefixHits, 10u);
    EXPECT_EQ(out.aggregate.prefixMisses, 2u);
    EXPECT_GT(out.aggregate.savedPrefillSeconds, 0.0);
    // Each family lives entirely on one replica: the per-replica
    // request counts split the trace evenly.
    ASSERT_EQ(out.routedRequests.size(), 2u);
    EXPECT_EQ(out.routedRequests[0], 6u);
    EXPECT_EQ(out.routedRequests[1], 6u);
}

TEST(PrefixFleet, AffinityWithCachingOffFallsBackToLeastLoaded)
{
    auto model = testModel();
    auto cluster = testCluster(model);
    WorkloadSpec spec;
    spec.count = 40;
    spec.length.kind = LengthSourceKind::Pairs;
    spec.length.pairs = {{2000, 16}, {4000, 16}};
    spec.arrival.kind = ArrivalKind::Poisson;
    spec.arrival.ratePerSecond = 20.0;
    spec.prefix.share = 0.5;
    spec.prefix.tokens = 1024;
    auto built = buildWorkload(spec, 41);

    auto run = [&](RoutePolicy policy) {
        FleetOptions fopts;
        fopts.replicas = 3;
        fopts.policy = policy;
        fopts.dispatchLatencySeconds = 0.004;
        fopts.engine = cachingOptions(false);
        fopts.engine.chargePrefill = false;
        FleetEngine fleet(cluster, model, built.initial, fopts);
        return fleet.run();
    };
    auto ll = run(RoutePolicy::LeastLoaded);
    auto pa = run(RoutePolicy::PrefixAffinity);

    // Every warmth probe reads 0 without caching, so the decisions
    // — and therefore the entire simulation — are identical.
    EXPECT_EQ(pa.routedRequests, ll.routedRequests);
    EXPECT_EQ(pa.aggregate.simulatedSeconds,
              ll.aggregate.simulatedSeconds);
    EXPECT_EQ(pa.aggregate.simEvents, ll.aggregate.simEvents);
    EXPECT_EQ(pa.aggregate.firstTokenLatency,
              ll.aggregate.firstTokenLatency);
    EXPECT_EQ(pa.aggregate.completionSeconds,
              ll.aggregate.completionSeconds);
    EXPECT_EQ(routePolicyName(RoutePolicy::PrefixAffinity),
              "prefix-affinity");
}

} // namespace
} // namespace pimphony
