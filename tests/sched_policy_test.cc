/**
 * @file
 * Tests for the pluggable xPU co-scheduling subsystem: policy
 * naming/factory plumbing, the preemption re-planner, the
 * queue-arbitrated device (ordering, quantum slicing, charge
 * conservation, decode-wait bounds), the arbitrated stage join, and
 * the engine-level properties the policies exist for — DecodePriority
 * cuts the p95 decode token gap vs FIFO under bursty load,
 * ChunkPreempt bounds the worst-case decode stall by its quantum,
 * SloAdmission keeps the p95 gap under the target at the cost of
 * higher tail TTFT, and every policy conserves the planned prefill
 * charge.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/device.hh"
#include "sim/event_queue.hh"
#include "system/engine.hh"
#include "system/prefill.hh"
#include "system/sched_policy.hh"
#include "system/stage_device.hh"
#include "core/orchestrator.hh"
#include "workload/arrival.hh"

namespace pimphony {
namespace {

// --- Policy plumbing. ------------------------------------------------

TEST(SchedPolicy, NamesRoundTripAndFactoryKinds)
{
    for (SchedPolicyKind kind : allSchedPolicies()) {
        SchedPolicyKind parsed = SchedPolicyKind::Fifo;
        ASSERT_TRUE(parseSchedPolicy(schedPolicyName(kind), parsed));
        EXPECT_EQ(parsed, kind);

        SchedPolicyConfig cfg;
        cfg.kind = kind;
        auto policy = makeSchedPolicy(cfg);
        ASSERT_NE(policy, nullptr);
        EXPECT_EQ(policy->kind(), kind);
        EXPECT_EQ(policy->name(), schedPolicyName(kind));
    }
    SchedPolicyKind out = SchedPolicyKind::ChunkPreempt;
    EXPECT_FALSE(parseSchedPolicy("round-robin", out));
    EXPECT_EQ(out, SchedPolicyKind::ChunkPreempt); // untouched
}

TEST(SchedPolicy, OnlyPriorityPoliciesReorderTheTimeline)
{
    SchedPolicyConfig cfg;
    cfg.kind = SchedPolicyKind::Fifo;
    EXPECT_FALSE(makeSchedPolicy(cfg)->reordersXpu());
    cfg.kind = SchedPolicyKind::SloAdmission;
    EXPECT_FALSE(makeSchedPolicy(cfg)->reordersXpu());
    cfg.kind = SchedPolicyKind::DecodePriority;
    EXPECT_TRUE(makeSchedPolicy(cfg)->reordersXpu());
    cfg.kind = SchedPolicyKind::ChunkPreempt;
    EXPECT_TRUE(makeSchedPolicy(cfg)->reordersXpu());
}

TEST(SchedPolicy, SloGateBindsOnlyWithDecodeInFlight)
{
    SchedPolicyConfig cfg;
    cfg.kind = SchedPolicyKind::SloAdmission;
    cfg.sloTargetGapSeconds = 0.1;
    cfg.sloMinSamples = 8;
    cfg.sloHeadroom = 0.7;
    auto policy = makeSchedPolicy(cfg);

    // Gate open: nothing decoding, or too few samples, or gap OK.
    EXPECT_TRUE(policy->admitPrefill(10.0, 100, false));
    EXPECT_TRUE(policy->admitPrefill(10.0, 7, true));
    EXPECT_TRUE(policy->admitPrefill(0.06, 100, true));
    // Gate shut: headroom * target = 70 ms exceeded while decoding.
    EXPECT_FALSE(policy->admitPrefill(0.0701, 100, true));
    // Other policies never defer.
    cfg.kind = SchedPolicyKind::Fifo;
    EXPECT_TRUE(makeSchedPolicy(cfg)->admitPrefill(10.0, 100, true));
}

// --- Preemption re-planner. ------------------------------------------

TEST(PreemptionSlices, ConservesChargeExactly)
{
    // Full quanta + remainder.
    auto s = preemptionSlices(0.7, 0.5);
    ASSERT_EQ(s.size(), 2u);
    EXPECT_DOUBLE_EQ(s[0], 0.5);
    EXPECT_DOUBLE_EQ(s[1], 0.2);
    // Exact multiple: no zero-length tail slice.
    s = preemptionSlices(10.0, 0.5);
    EXPECT_EQ(s.size(), 20u);
    double sum = 0.0;
    for (double v : s)
        sum += v;
    EXPECT_NEAR(sum, 10.0, 1e-12);
    // No quantum (or a charge within one): a single slice.
    s = preemptionSlices(3.0, 0.0);
    ASSERT_EQ(s.size(), 1u);
    EXPECT_DOUBLE_EQ(s[0], 3.0);
    EXPECT_EQ(preemptionSlices(0.3, 0.5).size(), 1u);
    EXPECT_TRUE(preemptionSlices(0.0, 0.5).empty());
}

// --- Queue-arbitrated device. ----------------------------------------

sim::WorkItem
chunkItem(double seconds)
{
    sim::WorkItem w;
    w.kind = sim::WorkItem::Kind::PrefillChunk;
    w.seconds = seconds;
    return w;
}

sim::WorkItem
decodeItem(double seconds)
{
    sim::WorkItem w;
    w.seconds = seconds;
    return w;
}

TEST(QueuedDevice, NullArbiterKeepsReservationTimeline)
{
    sim::EventQueue q;
    sim::QueuedDevice dev("d", nullptr);
    EXPECT_FALSE(dev.arbitrated());
    // Plain Device semantics: synchronous completion arithmetic,
    // including the advance reservation of a future-ready item.
    EXPECT_DOUBLE_EQ(dev.submit(q, decodeItem(2.0), 0.0), 2.0);
    EXPECT_DOUBLE_EQ(dev.submit(q, decodeItem(1.0), 0.5), 3.0);
    EXPECT_DOUBLE_EQ(dev.busyUntil(), 3.0);
    q.runAll();
    EXPECT_EQ(dev.completedItems(), 2u);
    EXPECT_DOUBLE_EQ(dev.busySeconds(), 3.0);
}

TEST(QueuedDevice, FifoArbiterIsWorkConserving)
{
    SchedPolicyConfig cfg;
    FifoPolicy policy(cfg);
    sim::EventQueue q;
    sim::QueuedDevice dev("d", &policy);
    EXPECT_TRUE(dev.arbitrated());

    double a_done = -1, b_done = -1, d_done = -1;
    dev.submit(q, chunkItem(2.0), 0.0, [&](double t) { a_done = t; });
    dev.submit(q, chunkItem(3.0), 0.0, [&](double t) { b_done = t; });
    dev.submit(q, decodeItem(1.0), 1.0, [&](double t) { d_done = t; });
    q.runAll();
    // FIFO order, but dispatch happens in event time: A [0,2],
    // B [2,5], decode [5,6].
    EXPECT_DOUBLE_EQ(a_done, 2.0);
    EXPECT_DOUBLE_EQ(b_done, 5.0);
    EXPECT_DOUBLE_EQ(d_done, 6.0);
    EXPECT_EQ(dev.overtakes(), 0u);
    EXPECT_EQ(dev.preemptionSlices(), 0u);
    EXPECT_DOUBLE_EQ(dev.busySeconds(), 6.0);
    EXPECT_DOUBLE_EQ(dev.maxDecodeWaitSeconds(), 4.0);
    EXPECT_EQ(dev.completedItems(), 3u);
}

TEST(QueuedDevice, DecodePriorityOvertakesQueuedChunks)
{
    SchedPolicyConfig cfg;
    cfg.kind = SchedPolicyKind::DecodePriority;
    DecodePriorityPolicy policy(cfg);
    sim::EventQueue q;
    sim::QueuedDevice dev("d", &policy);

    double b_done = -1, d_done = -1;
    dev.submit(q, chunkItem(2.0), 0.0);
    dev.submit(q, chunkItem(3.0), 0.0, [&](double t) { b_done = t; });
    dev.submit(q, decodeItem(1.0), 1.0, [&](double t) { d_done = t; });
    q.runAll();
    // The decode share jumps queued chunk B but not in-service A:
    // A [0,2], decode [2,3], B [3,6].
    EXPECT_DOUBLE_EQ(d_done, 3.0);
    EXPECT_DOUBLE_EQ(b_done, 6.0);
    EXPECT_EQ(dev.overtakes(), 1u);
    EXPECT_DOUBLE_EQ(dev.maxDecodeWaitSeconds(), 1.0);
    EXPECT_DOUBLE_EQ(dev.busySeconds(), 6.0);
}

/** Captures the completed WorkItem to observe preemption metadata. */
class CapturingDevice : public sim::QueuedDevice
{
  public:
    using sim::QueuedDevice::QueuedDevice;
    sim::WorkItem last;

  protected:
    void
    onComplete(const sim::WorkItem &item, double) override
    {
        last = item;
    }
};

TEST(QueuedDevice, ChunkPreemptStartsDecodeWithinOneQuantum)
{
    SchedPolicyConfig cfg;
    cfg.kind = SchedPolicyKind::ChunkPreempt;
    cfg.preemptQuantumSeconds = 0.5;
    ChunkPreemptPolicy policy(cfg);
    sim::EventQueue q;
    CapturingDevice dev("d", &policy);

    double chunk_done = -1, d_done = -1;
    dev.submit(q, chunkItem(10.0), 0.0, [&](double t) { chunk_done = t; });
    q.schedule(0.2, [&](double) {
        dev.submit(q, decodeItem(0.3), 0.2,
                   [&](double t) { d_done = t; });
    });
    q.runAll();

    // Chunk slices [0,0.5]; the decode share waits 0.3 <= quantum
    // and runs [0.5,0.8]; the chunk's remaining 9.5 s resume
    // [0.8,10.3]. No charge is lost: busy = 10.3 of 10.3.
    EXPECT_DOUBLE_EQ(d_done, 0.8);
    EXPECT_DOUBLE_EQ(chunk_done, 10.3);
    EXPECT_DOUBLE_EQ(dev.busySeconds(), 10.3);
    EXPECT_DOUBLE_EQ(dev.maxDecodeWaitSeconds(), 0.3);
    EXPECT_EQ(dev.overtakes(), 1u);
    // 20 dispatch slices, 19 of them preemption splits — exactly the
    // re-planner's slice count.
    EXPECT_EQ(dev.preemptionSlices(), 19u);
    EXPECT_EQ(preemptionSlices(10.0, 0.5).size(), 20u);
    // The preemption metadata rides on the completed item: the chunk
    // (the last completion) was served in 20 slices and its served
    // seconds equal its full charge.
    EXPECT_EQ(dev.last.kind, sim::WorkItem::Kind::PrefillChunk);
    EXPECT_EQ(dev.last.slices, 20u);
    EXPECT_NEAR(dev.last.servedSeconds, 10.0, 1e-12);
}

TEST(PipelineStage, ArbitratedJoinGatesDecodeBehindInServiceChunk)
{
    SchedPolicyConfig cfg;
    cfg.kind = SchedPolicyKind::DecodePriority;
    DecodePriorityPolicy policy(cfg);
    PimModuleConfig mcfg;
    PimModuleModel pim(mcfg);
    XpuModel xpu(XpuConfig::neupimsNpu());
    PipelineStage stage("s", pim, &xpu, &policy);
    sim::EventQueue q;

    stage.submit(q, chunkItem(1.0), 0.0);
    sim::WorkItem decode;
    decode.seconds = 0.5;
    decode.fcSeconds = 0.4;
    double done = -1;
    stage.submit(q, decode, 0.0, [&](double t) { done = t; });
    q.runAll();
    // Attention [0,0.5] on PIM; the FC share waits for the
    // in-service chunk and runs [1.0,1.4] on the xPU; the stage
    // completes at the join and the stall is charged to the
    // serializing timeline.
    EXPECT_DOUBLE_EQ(done, 1.4);
    EXPECT_DOUBLE_EQ(stage.busyUntil(), 1.4);
    ASSERT_NE(stage.xpu(), nullptr);
    EXPECT_DOUBLE_EQ(stage.xpu()->busySeconds(), 1.4);
}

// --- Engine-level policy properties. ---------------------------------

EngineResult
runPolicy(const ClusterConfig &cluster, const LlmConfig &model,
          const std::vector<TimedRequest> &timed, Tokens chunk,
          const SchedPolicyConfig &sched)
{
    EngineOptions opts;
    opts.allocator = AllocatorKind::LazyChunk;
    opts.stepModel = StepModel::EventDriven;
    opts.prefillChunkTokens = chunk;
    opts.sched = sched;
    return ServingEngine(cluster, model, timed, opts).run();
}

void
expectPrefillConserved(const EngineResult &r,
                       const ClusterConfig &cluster, const char *tag)
{
    // Policies relocate prefill work in time; none may lose any of
    // the planner's apportioned charge. The per-stage work items
    // scale the scalar charge by prefillEngines / tp, so the total
    // served on the xPU timelines must match that scaling within 1%.
    double expected = r.prefillSeconds *
                      static_cast<double>(cluster.prefillEngines()) /
                      cluster.plan.tp;
    ASSERT_GT(expected, 0.0) << tag;
    EXPECT_NEAR(r.xpuPrefillBusySeconds / expected, 1.0, 0.01) << tag;
}

TEST(SchedPolicyEngine, DecodePriorityCutsP95GapUnderBurstyLoad)
{
    auto model = LlmConfig::llm7b(true);
    auto cluster = ClusterConfig::neupimsLike(model);
    applyOptions(cluster, PimphonyOptions::all());

    std::vector<Request> reqs;
    for (RequestId i = 0; i < 32; ++i)
        reqs.push_back({i, 30000, 64});
    OnOffTraffic traffic;
    traffic.onRate = 4.0;
    traffic.offRate = 0.0;
    traffic.meanOnSeconds = 2.0;
    traffic.meanOffSeconds = 4.0;
    auto timed = onOffArrivals(reqs, traffic, 17);

    SchedPolicyConfig sched;
    sched.kind = SchedPolicyKind::Fifo;
    auto fifo = runPolicy(cluster, model, timed, 2048, sched);
    sched.kind = SchedPolicyKind::DecodePriority;
    auto dp = runPolicy(cluster, model, timed, 2048, sched);
    sched.kind = SchedPolicyKind::ChunkPreempt;
    auto cp = runPolicy(cluster, model, timed, 2048, sched);

    ASSERT_EQ(fifo.completedRequests, 32u);
    ASSERT_EQ(dp.completedRequests, 32u);
    ASSERT_EQ(cp.completedRequests, 32u);

    // Prioritizing decode strictly cuts the decode token-gap tail:
    // an FC share waits for at most the in-service chunk instead of
    // the whole queued burst.
    ASSERT_GT(fifo.p95TokenGapSeconds, 0.0);
    EXPECT_LT(dp.p95TokenGapSeconds, 0.5 * fifo.p95TokenGapSeconds);
    // Preemption tightens the tail further: the wait is one quantum,
    // not one chunk.
    EXPECT_LT(cp.p95TokenGapSeconds, dp.p95TokenGapSeconds);

    // Policy observability: decode really overtook queued prefill,
    // and only the quantum policy split chunks.
    EXPECT_GT(dp.decodeOvertakes, 0u);
    EXPECT_EQ(dp.chunkSlices, 0u);
    EXPECT_GT(cp.chunkSlices, 0u);
    EXPECT_EQ(fifo.chunkSlices, 0u);
    EXPECT_EQ(fifo.sloDeferrals, 0u);

    // Same admissions, same charge: chunking policies must not
    // change what prefill costs, only where it sits in time.
    EXPECT_NEAR(dp.prefillSeconds, fifo.prefillSeconds,
                1e-9 * fifo.prefillSeconds);
    EXPECT_NEAR(cp.prefillSeconds, fifo.prefillSeconds,
                1e-9 * fifo.prefillSeconds);
    expectPrefillConserved(fifo, cluster, "fifo");
    expectPrefillConserved(dp, cluster, "decode-priority");
    expectPrefillConserved(cp, cluster, "chunk-preempt");
}

TEST(SchedPolicyEngine, ChunkPreemptBoundsDecodeStallByQuantum)
{
    auto model = LlmConfig::llm7b(true);
    auto cluster = ClusterConfig::neupimsLike(model);
    applyOptions(cluster, PimphonyOptions::all());
    ASSERT_EQ(cluster.plan.pp, 1u); // one decode share in flight/stage

    std::vector<Request> reqs;
    for (RequestId i = 0; i < 32; ++i)
        reqs.push_back({i, 30000, 64});
    OnOffTraffic traffic;
    traffic.onRate = 4.0;
    traffic.offRate = 0.0;
    traffic.meanOnSeconds = 2.0;
    traffic.meanOffSeconds = 4.0;
    auto timed = onOffArrivals(reqs, traffic, 17);

    SchedPolicyConfig sched;
    sched.kind = SchedPolicyKind::ChunkPreempt;
    sched.preemptQuantumSeconds = 2e-3;
    auto cp = runPolicy(cluster, model, timed, 2048, sched);
    sched.kind = SchedPolicyKind::DecodePriority;
    auto dp = runPolicy(cluster, model, timed, 2048, sched);

    ASSERT_EQ(cp.completedRequests, 32u);
    ASSERT_GT(cp.chunkSlices, 0u);
    // The worst decode stall behind prefill is one quantum (plus at
    // most one device cycle of slack); without preemption it is one
    // whole chunk — many quanta.
    double cycle = cluster.module.timing.secondsPerCycle();
    EXPECT_LE(cp.maxDecodeXpuWaitSeconds,
              sched.preemptQuantumSeconds + cycle + 1e-12);
    EXPECT_GT(cp.maxDecodeXpuWaitSeconds, 0.0);
    EXPECT_GT(dp.maxDecodeXpuWaitSeconds,
              5.0 * sched.preemptQuantumSeconds);
}

TEST(SchedPolicyEngine, SloAdmissionKeepsGapUnderTargetAtTtftCost)
{
    auto model = LlmConfig::llm7b(true);
    auto cluster = ClusterConfig::neupimsLike(model);
    applyOptions(cluster, PimphonyOptions::all());

    // A warm decoder (so the SLO feedback exists) plus two admission
    // bursts of long-context prefills that clobber its token gaps.
    std::vector<TimedRequest> timed;
    timed.push_back({{0, 30000, 1536}, 0.0});
    RequestId id = 1;
    for (int burst = 0; burst < 2; ++burst)
        for (int i = 0; i < 8; ++i)
            timed.push_back(
                {{id++, 30000, 64}, 3.0 + 7.0 * burst + 0.25 * i});

    SchedPolicyConfig sched;
    sched.kind = SchedPolicyKind::Fifo;
    auto fifo = runPolicy(cluster, model, timed, 512, sched);
    sched.kind = SchedPolicyKind::SloAdmission;
    sched.sloTargetGapSeconds = 0.07;
    sched.sloWindow = 32;
    auto slo = runPolicy(cluster, model, timed, 512, sched);

    ASSERT_EQ(fifo.completedRequests, 17u);
    ASSERT_EQ(slo.completedRequests, 17u);
    ASSERT_GT(slo.sloDeferrals, 0u);

    // The gate keeps the decode tail under the target; FIFO blows
    // through it during the bursts.
    EXPECT_LE(slo.p95TokenGapSeconds, sched.sloTargetGapSeconds);
    EXPECT_GT(fifo.p95TokenGapSeconds, sched.sloTargetGapSeconds);

    // The cost is time to first token: deferred prefills stretch the
    // TTFT tail (admission serializes, so the average can improve
    // while the worst case degrades).
    auto max_ttft = [](const EngineResult &r) {
        double m = 0.0;
        for (const auto &kv : r.firstTokenLatency)
            m = std::max(m, kv.second);
        return m;
    };
    EXPECT_GT(max_ttft(slo), max_ttft(fifo));
    expectPrefillConserved(fifo, cluster, "fifo");
    expectPrefillConserved(slo, cluster, "slo-admission");
}

TEST(SchedPolicyEngine, AllPoliciesSelectableViaOrchestrator)
{
    for (SchedPolicyKind kind : allSchedPolicies()) {
        OrchestratorConfig cfg;
        cfg.system = SystemKind::XpuPim;
        cfg.model = LlmConfig::llm7b(true);
        cfg.options = PimphonyOptions::all();
        cfg.plan = ParallelPlan{2, 2}; // exercise the PP>1 join path
        cfg.prefillChunkTokens = 2048;
        cfg.sched.kind = kind;
        cfg.nRequests = 6;
        cfg.decodeTokens = 8;
        PimphonyOrchestrator orch(cfg);
        auto r = orch.evaluate(TraceTask::MultifieldQa);
        EXPECT_EQ(r.engine.completedRequests, 6u)
            << schedPolicyName(kind);
        EXPECT_GT(r.engine.tokensPerSecond, 0.0)
            << schedPolicyName(kind);
    }
}

} // namespace
} // namespace pimphony
