/**
 * @file
 * Scheduler tests: the paper's Fig. 7 worked example, ordering and
 * hazard-freedom properties over randomized command streams for all
 * three controllers, DCS metadata cost, and refresh/row accounting.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hh"
#include "dram/refresh.hh"
#include "dram/row_state.hh"
#include "isa/pim_command.hh"
#include "pim/dcs_scheduler.hh"
#include "pim/scheduler.hh"

namespace pimphony {
namespace {

/**
 * The 11-command GEMV of Fig. 7(a): three input tiles, two output
 * groups of three accumulating MACs each, one RD-OUT per group. Each
 * MAC is its own instruction, as drawn in the figure's command stack.
 */
CommandStream
fig7Stream()
{
    CommandStream s;
    auto push = [&s](PimCommand c, std::int32_t group) {
        c.group = group;
        s.append(c);
    };
    int grp = 0;
    push(PimCommand::wrInp(0), grp);
    push(PimCommand::wrInp(1), grp);
    push(PimCommand::wrInp(2), grp);
    ++grp;
    push(PimCommand::mac(0, 0, 0, 0), ++grp);
    push(PimCommand::mac(1, 0, 0, 1), ++grp);
    push(PimCommand::mac(2, 0, 0, 2), ++grp);
    push(PimCommand::rdOut(0), ++grp);
    push(PimCommand::mac(0, 1, 0, 3), ++grp);
    push(PimCommand::mac(1, 1, 0, 4), ++grp);
    push(PimCommand::mac(2, 1, 0, 5), ++grp);
    push(PimCommand::rdOut(1), ++grp);
    return s;
}

TEST(Fig7, StaticScheduleTakes34Cycles)
{
    auto params = AimTimingParams::illustrative();
    auto sched = makeScheduler(SchedulerKind::Static, params);
    auto r = sched->schedule(fig7Stream(), true);
    EXPECT_EQ(r.makespan, 34u);
}

TEST(Fig7, DcsBeatsStaticByAboutAThird)
{
    auto params = AimTimingParams::illustrative();
    auto st = makeScheduler(SchedulerKind::Static, params)
                  ->schedule(fig7Stream());
    auto dc = makeScheduler(SchedulerKind::Dcs, params)
                  ->schedule(fig7Stream());
    EXPECT_LT(dc.makespan, st.makespan);
    // Paper: 34 -> 22 cycles. Our issue-policy detail lands within a
    // few cycles of that.
    EXPECT_LE(dc.makespan, 26u);
    EXPECT_GE(dc.makespan, 20u);
}

TEST(Fig7, DcsIssuesMacBeforeUnrelatedInputWrite)
{
    // The hallmark of DCS: M3 (dependent only on W0) issues before
    // all WR-INPs are done, unlike the static schedule.
    auto params = AimTimingParams::illustrative();
    auto r = makeScheduler(SchedulerKind::Dcs, params)
                 ->schedule(fig7Stream(), true);
    Cycle m3 = 0, w2_complete = 0;
    for (const auto &sc : r.timeline) {
        if (sc.cmd.kind == CommandKind::Mac && sc.cmd.id == 3)
            m3 = sc.issue;
        if (sc.cmd.kind == CommandKind::WrInp && sc.cmd.id == 2)
            w2_complete = sc.complete;
    }
    EXPECT_LT(m3, w2_complete);
}

TEST(Fig7, BreakdownSumsToMakespan)
{
    auto params = AimTimingParams::illustrative();
    for (auto kind : {SchedulerKind::Static, SchedulerKind::Dcs}) {
        auto r = makeScheduler(kind, params)->schedule(fig7Stream());
        EXPECT_EQ(r.breakdown.total(), r.makespan)
            << schedulerName(kind);
    }
}

/** Build a random, structurally valid stream. */
CommandStream
randomStream(Rng &rng, const AimTimingParams &params, std::size_t n,
             bool regions)
{
    CommandStream s;
    unsigned g = params.gbufEntries;
    unsigned o = params.outputEntries;
    std::vector<bool> gw(g, false), ow(o, false);
    std::int32_t grp = 0;
    auto region_of_gbuf = [&](std::int32_t idx) {
        return static_cast<std::int8_t>(idx < static_cast<std::int32_t>(
                                            g / 2)
                                            ? 0
                                            : 1);
    };
    auto region_of_out = [&](std::int32_t idx) {
        return static_cast<std::int8_t>(idx < static_cast<std::int32_t>(
                                            o / 2)
                                            ? 0
                                            : 1);
    };
    std::uint64_t row = 0;
    while (s.size() < n) {
        int pick = static_cast<int>(rng.uniformInt(0, 2));
        if (pick == 0) {
            auto idx =
                static_cast<std::int32_t>(rng.uniformInt(0, g - 1));
            auto c = PimCommand::wrInp(idx);
            c.group = grp++;
            if (regions)
                c.region = region_of_gbuf(idx);
            s.append(c);
            gw[idx] = true;
        } else if (pick == 1) {
            // Pick a written gbuf entry if any.
            std::vector<std::int32_t> cand;
            for (unsigned i = 0; i < g; ++i)
                if (gw[i])
                    cand.push_back(static_cast<std::int32_t>(i));
            if (cand.empty())
                continue;
            auto gi = cand[rng.uniformInt(0, cand.size() - 1)];
            std::int32_t oi;
            if (regions) {
                // Region consistency contract: a MAC's output entry
                // lives in the same buffer half as its input entry.
                unsigned half = o / 2;
                unsigned base = region_of_gbuf(gi) ? half : 0;
                oi = static_cast<std::int32_t>(
                    rng.uniformInt(base, base + half - 1));
            } else {
                oi = static_cast<std::int32_t>(rng.uniformInt(0, o - 1));
            }
            auto c = PimCommand::mac(gi, oi,
                                     static_cast<RowIndex>(row / 8),
                                     static_cast<std::int32_t>(row % 8));
            ++row;
            c.group = grp++;
            if (regions)
                c.region = region_of_gbuf(gi);
            s.append(c);
            ow[oi] = true;
        } else {
            std::vector<std::int32_t> cand;
            for (unsigned i = 0; i < o; ++i)
                if (ow[i])
                    cand.push_back(static_cast<std::int32_t>(i));
            if (cand.empty())
                continue;
            auto oi = cand[rng.uniformInt(0, cand.size() - 1)];
            auto c = PimCommand::rdOut(oi);
            c.group = grp++;
            if (regions)
                c.region = region_of_out(oi);
            s.append(c);
            ow[oi] = false;
        }
    }
    return s;
}

/**
 * Hazard checker: replays a timeline against the per-entry dependency
 * semantics. For every command, the most recent prior access to the
 * same buffer entry must have completed before issue, except that a
 * MAC may chain tCCDS behind a preceding MAC on the same OBuf entry.
 */
void
checkHazards(const std::vector<ScheduledCommand> &timeline,
             const AimTimingParams &params)
{
    std::vector<ScheduledCommand> by_id(timeline);
    std::sort(by_id.begin(), by_id.end(),
              [](const auto &a, const auto &b) {
                  return a.cmd.id < b.cmd.id;
              });

    std::vector<std::int64_t> gbuf_last(params.gbufEntries, -1);
    std::vector<std::int64_t> obuf_last(params.outputEntries, -1);

    for (const auto &sc : by_id) {
        const PimCommand &c = sc.cmd;
        auto check_dep = [&](std::int64_t dep, bool allow_chain) {
            if (dep < 0)
                return;
            const auto &d = by_id[static_cast<std::size_t>(dep)];
            if (allow_chain && d.cmd.kind == CommandKind::Mac) {
                EXPECT_GE(sc.issue, d.issue + params.tCcds)
                    << "chain violation at id " << c.id;
            } else {
                EXPECT_GE(sc.issue, d.complete)
                    << "hazard at id " << c.id << " dep " << d.cmd.id;
            }
        };
        switch (c.kind) {
          case CommandKind::WrInp:
            check_dep(gbuf_last[c.gbufIdx], false);
            gbuf_last[c.gbufIdx] = static_cast<std::int64_t>(c.id);
            break;
          case CommandKind::Mac:
            // Read-after-read on the GBuf entry (previous accessor
            // also a MAC) is hazard-free and may chain; a write
            // (WR-INP) must have landed.
            check_dep(gbuf_last[c.gbufIdx], true);
            check_dep(obuf_last[c.outIdx], true);
            gbuf_last[c.gbufIdx] = static_cast<std::int64_t>(c.id);
            obuf_last[c.outIdx] = static_cast<std::int64_t>(c.id);
            break;
          case CommandKind::RdOut:
            check_dep(obuf_last[c.outIdx], false);
            obuf_last[c.outIdx] = static_cast<std::int64_t>(c.id);
            break;
        }
    }
}

class SchedulerProperty
    : public ::testing::TestWithParam<std::tuple<SchedulerKind, int>>
{
};

TEST_P(SchedulerProperty, HazardFreeOnRandomStreams)
{
    auto [kind, seed] = GetParam();
    AimTimingParams params = AimTimingParams::aimxWithObuf(8);
    Rng rng(static_cast<std::uint64_t>(seed));
    auto stream = randomStream(rng, params, 300,
                               kind == SchedulerKind::PingPong);
    ASSERT_EQ(stream.validate(params.gbufEntries, params.outputEntries),
              "");
    auto r = makeScheduler(kind, params)->schedule(stream, true);
    ASSERT_EQ(r.timeline.size(), stream.size());
    checkHazards(r.timeline, params);
    // Bus discipline: issues at least tCCDS apart.
    std::vector<Cycle> issues;
    for (const auto &sc : r.timeline)
        issues.push_back(sc.issue);
    std::sort(issues.begin(), issues.end());
    for (std::size_t i = 1; i < issues.size(); ++i)
        EXPECT_GE(issues[i], issues[i - 1] + params.tCcds);
    // Accounting closes.
    EXPECT_EQ(r.breakdown.total(), r.makespan);
    EXPECT_GT(r.makespan, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, SchedulerProperty,
    ::testing::Combine(::testing::Values(SchedulerKind::Static,
                                         SchedulerKind::PingPong,
                                         SchedulerKind::Dcs),
                       ::testing::Range(0, 8)));

TEST(Scheduler, DcsNeverSlowerThanStatic)
{
    AimTimingParams params = AimTimingParams::aimxWithObuf(8);
    for (int seed = 0; seed < 6; ++seed) {
        Rng rng(static_cast<std::uint64_t>(seed) + 100);
        auto stream = randomStream(rng, params, 400, false);
        auto st = makeScheduler(SchedulerKind::Static, params)
                      ->schedule(stream);
        auto dc =
            makeScheduler(SchedulerKind::Dcs, params)->schedule(stream);
        EXPECT_LE(dc.makespan, st.makespan) << "seed " << seed;
    }
}

TEST(Scheduler, EmptyStreamIsZero)
{
    AimTimingParams params;
    CommandStream empty;
    for (auto kind : {SchedulerKind::Static, SchedulerKind::Dcs}) {
        auto r = makeScheduler(kind, params)->schedule(empty);
        EXPECT_EQ(r.makespan, 0u);
    }
}

TEST(Scheduler, StaticStreamsSameGroupWrInpAtTccds)
{
    AimTimingParams params = AimTimingParams::illustrative();
    CommandStream s;
    for (int i = 0; i < 4; ++i) {
        auto c = PimCommand::wrInp(i);
        c.group = 0;
        s.append(c);
    }
    auto r = makeScheduler(SchedulerKind::Static, params)
                 ->schedule(s, true);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(r.timeline[i].issue,
                  static_cast<Cycle>(i) * params.tCcds);
}

TEST(Scheduler, StaticSeparatesMacGroupsByTmac)
{
    AimTimingParams params = AimTimingParams::illustrative();
    CommandStream s;
    auto w = PimCommand::wrInp(0);
    w.group = 0;
    s.append(w);
    for (int i = 0; i < 3; ++i) {
        auto m = PimCommand::mac(0, 0, 0, i);
        m.group = 1 + i; // separate instructions
        s.append(m);
    }
    auto r = makeScheduler(SchedulerKind::Static, params)
                 ->schedule(s, true);
    EXPECT_EQ(r.timeline[1].issue, params.tWrInp);
    EXPECT_EQ(r.timeline[2].issue, params.tWrInp + params.tMac);
    EXPECT_EQ(r.timeline[3].issue, params.tWrInp + 2 * params.tMac);
}

TEST(Dcs, ChainedMacsIssueAtTccds)
{
    AimTimingParams params = AimTimingParams::illustrative();
    CommandStream s;
    auto w = PimCommand::wrInp(0);
    w.group = 0;
    s.append(w);
    for (int i = 0; i < 4; ++i) {
        auto m = PimCommand::mac(0, 0, 0, i);
        m.group = 1 + i;
        s.append(m);
    }
    auto r = makeScheduler(SchedulerKind::Dcs, params)->schedule(s, true);
    // First MAC waits for the write to land; the rest chain at tCCDS.
    EXPECT_EQ(r.timeline[1].issue, params.tWrInp);
    for (int i = 2; i <= 4; ++i)
        EXPECT_EQ(r.timeline[i].issue,
                  r.timeline[i - 1].issue + params.tCcds);
}

TEST(Dcs, MetadataBytesMatchPaperScale)
{
    AimTimingParams params = AimTimingParams::aimxWithObuf(16);
    DcsScheduler dcs(params);
    // The paper reports a 576 B D-Table + S-Table per controller; our
    // structure lands within the same order (64+16 entries x 9 B).
    EXPECT_EQ(dcs.metadataBytes(), (64u + 16u) * 9u);
    EXPECT_LT(dcs.metadataBytes(), 1024u);
}

TEST(RowState, CountsActivatesAndPrecharges)
{
    AimTimingParams params;
    RowStateTracker rows(params);
    EXPECT_EQ(rows.prepare(0), params.tRcdRd); // cold activate
    EXPECT_EQ(rows.prepare(0), 0u);            // hit
    EXPECT_EQ(rows.prepare(1), params.tRp + params.tRcdRd);
    EXPECT_EQ(rows.activates(), 2u);
    EXPECT_EQ(rows.precharges(), 1u);
    rows.close();
    EXPECT_EQ(rows.precharges(), 2u);
    EXPECT_EQ(rows.openRow(), kNoRow);
}

TEST(Refresh, PeriodicStallsAccounted)
{
    AimTimingParams params;
    params.tRefi = 100;
    params.tRfc = 10;
    RefreshModel refresh(params);
    EXPECT_EQ(refresh.adjust(50), 50u);   // before first due
    EXPECT_EQ(refresh.adjust(105), 110u); // pushed past the window
    EXPECT_EQ(refresh.refreshes(), 1u);
    // Refreshes overdue inside a long idle gap complete for free;
    // only the one landing at the issue point pushes it back.
    EXPECT_EQ(refresh.adjust(500), 510u);
    EXPECT_EQ(refresh.refreshes(), 5u);
}

TEST(Refresh, DisabledWhenTrefiZero)
{
    AimTimingParams params;
    params.tRefi = 0;
    RefreshModel refresh(params);
    EXPECT_EQ(refresh.adjust(123456), 123456u);
    EXPECT_EQ(refresh.refreshes(), 0u);
}

} // namespace
} // namespace pimphony
