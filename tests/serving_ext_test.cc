/**
 * @file
 * Tests for the serving extensions: Poisson arrivals / open-loop
 * operation, request-latency reporting, and the prefill model.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "system/engine.hh"
#include "system/prefill.hh"
#include "workload/arrival.hh"

namespace pimphony {
namespace {

std::vector<Request>
uniformRequests(std::size_t n, Tokens context, Tokens decode)
{
    std::vector<Request> out;
    for (std::size_t i = 0; i < n; ++i)
        out.push_back({static_cast<RequestId>(i), context, decode});
    return out;
}

TEST(Arrivals, PoissonIsMonotoneAndRateAccurate)
{
    auto reqs = uniformRequests(20000, 1000, 8);
    auto timed = poissonArrivals(reqs, 50.0, 7);
    ASSERT_EQ(timed.size(), reqs.size());
    double prev = 0.0;
    for (const auto &t : timed) {
        EXPECT_GE(t.arrivalSeconds, prev);
        prev = t.arrivalSeconds;
    }
    // 20000 arrivals at 50/s ~ 400 s +- a few percent.
    EXPECT_NEAR(timed.back().arrivalSeconds, 400.0, 400.0 * 0.05);
}

TEST(Arrivals, DeterministicPerSeed)
{
    auto reqs = uniformRequests(100, 1000, 8);
    auto a = poissonArrivals(reqs, 10.0, 3);
    auto b = poissonArrivals(reqs, 10.0, 3);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_DOUBLE_EQ(a[i].arrivalSeconds, b[i].arrivalSeconds);
}

TEST(Arrivals, ImmediateIsClosedLoop)
{
    auto reqs = uniformRequests(5, 1000, 8);
    for (const auto &t : immediateArrivals(reqs))
        EXPECT_DOUBLE_EQ(t.arrivalSeconds, 0.0);
}

namespace {

/** Mean and CV of the inter-arrival gaps of @p timed. */
void
gapMoments(const std::vector<TimedRequest> &timed, double &mean,
           double &cv)
{
    double prev = 0.0, sum = 0.0, sum2 = 0.0;
    for (const auto &t : timed) {
        double gap = t.arrivalSeconds - prev;
        prev = t.arrivalSeconds;
        sum += gap;
        sum2 += gap * gap;
    }
    double n = static_cast<double>(timed.size());
    mean = sum / n;
    double var = sum2 / n - mean * mean;
    cv = var > 0.0 ? std::sqrt(var) / mean : 0.0;
}

} // namespace

TEST(Arrivals, GammaMatchesRateAndBurstiness)
{
    auto reqs = uniformRequests(20000, 1000, 8);
    auto timed = gammaArrivals(reqs, 50.0, 2.5, 7);
    ASSERT_EQ(timed.size(), reqs.size());
    double prev = 0.0;
    for (const auto &t : timed) {
        EXPECT_GE(t.arrivalSeconds, prev);
        prev = t.arrivalSeconds;
    }
    double mean, cv;
    gapMoments(timed, mean, cv);
    EXPECT_NEAR(mean, 1.0 / 50.0, 0.05 / 50.0);
    EXPECT_NEAR(cv, 2.5, 2.5 * 0.1); // CV > 1: burstier than Poisson
    EXPECT_GT(cv, 1.0);
}

TEST(Arrivals, GammaDeterministicPerSeed)
{
    auto reqs = uniformRequests(200, 1000, 8);
    auto a = gammaArrivals(reqs, 10.0, 3.0, 5);
    auto b = gammaArrivals(reqs, 10.0, 3.0, 5);
    auto c = gammaArrivals(reqs, 10.0, 3.0, 6);
    int same = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a[i].arrivalSeconds, b[i].arrivalSeconds);
        if (a[i].arrivalSeconds == c[i].arrivalSeconds)
            ++same;
    }
    EXPECT_LT(same, 4);
}

TEST(Arrivals, OnOffProducesBurstsAndMatchesLongRunRate)
{
    auto reqs = uniformRequests(20000, 1000, 8);
    OnOffTraffic traffic;
    traffic.onRate = 100.0;
    traffic.offRate = 0.0;
    traffic.meanOnSeconds = 1.0;
    traffic.meanOffSeconds = 9.0;
    auto timed = onOffArrivals(reqs, traffic, 7);
    ASSERT_EQ(timed.size(), reqs.size());
    double prev = 0.0;
    for (const auto &t : timed) {
        EXPECT_GE(t.arrivalSeconds, prev);
        prev = t.arrivalSeconds;
    }
    // Long-run average: 100/s for 10% of the time ~ 10/s.
    double mean, cv;
    gapMoments(timed, mean, cv);
    EXPECT_NEAR(mean, 0.1, 0.1 * 0.15);
    // MMPP gaps are far burstier than the Poisson CV of 1: most gaps
    // are intra-burst (~10 ms), a few span silent periods (~9 s).
    EXPECT_GT(cv, 2.0);
    std::size_t inside = 0, across = 0;
    prev = 0.0;
    for (const auto &t : timed) {
        double gap = t.arrivalSeconds - prev;
        prev = t.arrivalSeconds;
        if (gap < 0.1)
            ++inside;
        else if (gap > 1.0)
            ++across;
    }
    EXPECT_GT(inside, timed.size() * 9 / 10);
    EXPECT_GT(across, 50u);
}

TEST(Arrivals, OnOffDeterministicPerSeed)
{
    auto reqs = uniformRequests(500, 1000, 8);
    OnOffTraffic traffic;
    auto a = onOffArrivals(reqs, traffic, 11);
    auto b = onOffArrivals(reqs, traffic, 11);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_DOUBLE_EQ(a[i].arrivalSeconds, b[i].arrivalSeconds);
}

TEST(Arrivals, BurstyTracesServeEndToEnd)
{
    // The bursty generators must compose with the event engine: an
    // on/off trace admits in bursts and still completes everything.
    auto model = LlmConfig::llm7b(true);
    auto cluster = ClusterConfig::centLike(model);
    applyOptions(cluster, PimphonyOptions::all());
    auto reqs = uniformRequests(16, 20000, 8);
    OnOffTraffic traffic;
    traffic.onRate = 50.0;
    traffic.meanOnSeconds = 0.5;
    traffic.meanOffSeconds = 2.0;
    auto timed = onOffArrivals(reqs, traffic, 3);
    EngineOptions opts;
    opts.allocator = AllocatorKind::LazyChunk;
    auto r = ServingEngine(cluster, model, timed, opts).run();
    EXPECT_EQ(r.completedRequests, 16u);
    EXPECT_GE(r.p95RequestLatency, r.avgRequestLatency);
}

TEST(OpenLoop, EngineIdlesUntilArrivals)
{
    auto model = LlmConfig::llm7b(true);
    auto cluster = ClusterConfig::centLike(model);
    auto reqs = uniformRequests(4, 20000, 8);
    // Arrivals spaced far apart: total time is dominated by waiting.
    std::vector<TimedRequest> timed;
    for (std::size_t i = 0; i < reqs.size(); ++i)
        timed.push_back({reqs[i], static_cast<double>(i) * 10.0});

    applyOptions(cluster, PimphonyOptions::all());
    EngineOptions opts;
    opts.allocator = AllocatorKind::LazyChunk;
    ServingEngine engine(cluster, model, timed, opts);
    auto r = engine.run();
    EXPECT_EQ(r.completedRequests, 4u);
    EXPECT_GE(r.simulatedSeconds, 30.0); // waited for the last arrival
    // Each request's latency is its own decode, not the whole span.
    EXPECT_LT(r.avgRequestLatency, 5.0);
}

TEST(OpenLoop, LatencyPercentilesOrdered)
{
    auto model = LlmConfig::llm7b(true);
    auto cluster = ClusterConfig::centLike(model);
    applyOptions(cluster, PimphonyOptions::all());
    auto reqs = uniformRequests(24, 30000, 16);
    auto timed = poissonArrivals(reqs, 100.0, 11);
    EngineOptions opts;
    opts.allocator = AllocatorKind::LazyChunk;
    ServingEngine engine(cluster, model, timed, opts);
    auto r = engine.run();
    EXPECT_EQ(r.completedRequests, 24u);
    EXPECT_GT(r.avgRequestLatency, 0.0);
    EXPECT_GE(r.p95RequestLatency, r.avgRequestLatency);
}

TEST(Prefill, FlopsQuadraticInContext)
{
    auto model = LlmConfig::llm7b(false);
    double f1 = prefillFlops(model, 10000);
    double f2 = prefillFlops(model, 20000);
    // Superlinear growth from the attention term.
    EXPECT_GT(f2, 2.0 * f1);
    EXPECT_LT(f2, 4.5 * f1);
}

TEST(Prefill, NpuMuchFasterThanPnm)
{
    auto model = LlmConfig::llm7b(false);
    double npu = prefillSeconds(model, 60000, XpuConfig::neupimsNpu(), 4);
    double pnm = prefillSeconds(model, 60000, XpuConfig::centPnm(), 8);
    EXPECT_GT(pnm, 10.0 * npu); // 256 vs 3 TFLOPS per engine
    EXPECT_EQ(prefillSeconds(model, 0, XpuConfig::centPnm(), 8), 0.0);
}

TEST(Prefill, ChargedWhenRequested)
{
    auto model = LlmConfig::llm7b(true);
    auto cluster = ClusterConfig::neupimsLike(model);
    applyOptions(cluster, PimphonyOptions::all());
    auto reqs = uniformRequests(4, 40000, 8);
    EngineOptions opts;
    opts.allocator = AllocatorKind::LazyChunk;

    ServingEngine without(cluster, model, reqs, opts);
    auto r0 = without.run();
    EXPECT_DOUBLE_EQ(r0.prefillSeconds, 0.0);

    opts.chargePrefill = true;
    ServingEngine with(cluster, model, reqs, opts);
    auto r1 = with.run();
    EXPECT_GT(r1.prefillSeconds, 0.0);
    EXPECT_GT(r1.simulatedSeconds, r0.simulatedSeconds);
    EXPECT_LT(r1.tokensPerSecond, r0.tokensPerSecond);
}

TEST(OpenLoop, PreemptedRequestKeepsArrivalTime)
{
    auto model = LlmConfig::llm7b(true);
    auto cluster = ClusterConfig::centLike(model);
    cluster.nModules = 2;
    cluster.plan = ParallelPlan{2, 1};
    applyOptions(cluster, PimphonyOptions::all());

    Bytes usable = cluster.usableKvBytes(model);
    Tokens per_req = usable / model.kvBytesPerToken() / 2;
    auto reqs = uniformRequests(2, per_req - 8, 1024);
    EngineOptions opts;
    opts.allocator = AllocatorKind::LazyChunk;
    ServingEngine engine(cluster, model, reqs, opts);
    auto r = engine.run();
    // Both eventually finish (possibly after preemption) and their
    // latencies span the full serialized execution.
    EXPECT_EQ(r.completedRequests + r.rejectedRequests, 2u);
    if (r.completedRequests == 2) {
        EXPECT_GT(r.p95RequestLatency, r.avgRequestLatency * 0.99);
    }
}

} // namespace
} // namespace pimphony
