/**
 * @file
 * Tests for the serving extensions: Poisson arrivals / open-loop
 * operation, request-latency reporting, and the prefill model.
 */

#include <gtest/gtest.h>

#include "system/engine.hh"
#include "system/prefill.hh"
#include "workload/arrival.hh"

namespace pimphony {
namespace {

std::vector<Request>
uniformRequests(std::size_t n, Tokens context, Tokens decode)
{
    std::vector<Request> out;
    for (std::size_t i = 0; i < n; ++i)
        out.push_back({static_cast<RequestId>(i), context, decode});
    return out;
}

TEST(Arrivals, PoissonIsMonotoneAndRateAccurate)
{
    auto reqs = uniformRequests(20000, 1000, 8);
    auto timed = poissonArrivals(reqs, 50.0, 7);
    ASSERT_EQ(timed.size(), reqs.size());
    double prev = 0.0;
    for (const auto &t : timed) {
        EXPECT_GE(t.arrivalSeconds, prev);
        prev = t.arrivalSeconds;
    }
    // 20000 arrivals at 50/s ~ 400 s +- a few percent.
    EXPECT_NEAR(timed.back().arrivalSeconds, 400.0, 400.0 * 0.05);
}

TEST(Arrivals, DeterministicPerSeed)
{
    auto reqs = uniformRequests(100, 1000, 8);
    auto a = poissonArrivals(reqs, 10.0, 3);
    auto b = poissonArrivals(reqs, 10.0, 3);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_DOUBLE_EQ(a[i].arrivalSeconds, b[i].arrivalSeconds);
}

TEST(Arrivals, ImmediateIsClosedLoop)
{
    auto reqs = uniformRequests(5, 1000, 8);
    for (const auto &t : immediateArrivals(reqs))
        EXPECT_DOUBLE_EQ(t.arrivalSeconds, 0.0);
}

TEST(OpenLoop, EngineIdlesUntilArrivals)
{
    auto model = LlmConfig::llm7b(true);
    auto cluster = ClusterConfig::centLike(model);
    auto reqs = uniformRequests(4, 20000, 8);
    // Arrivals spaced far apart: total time is dominated by waiting.
    std::vector<TimedRequest> timed;
    for (std::size_t i = 0; i < reqs.size(); ++i)
        timed.push_back({reqs[i], static_cast<double>(i) * 10.0});

    applyOptions(cluster, PimphonyOptions::all());
    EngineOptions opts;
    opts.allocator = AllocatorKind::LazyChunk;
    ServingEngine engine(cluster, model, timed, opts);
    auto r = engine.run();
    EXPECT_EQ(r.completedRequests, 4u);
    EXPECT_GE(r.simulatedSeconds, 30.0); // waited for the last arrival
    // Each request's latency is its own decode, not the whole span.
    EXPECT_LT(r.avgRequestLatency, 5.0);
}

TEST(OpenLoop, LatencyPercentilesOrdered)
{
    auto model = LlmConfig::llm7b(true);
    auto cluster = ClusterConfig::centLike(model);
    applyOptions(cluster, PimphonyOptions::all());
    auto reqs = uniformRequests(24, 30000, 16);
    auto timed = poissonArrivals(reqs, 100.0, 11);
    EngineOptions opts;
    opts.allocator = AllocatorKind::LazyChunk;
    ServingEngine engine(cluster, model, timed, opts);
    auto r = engine.run();
    EXPECT_EQ(r.completedRequests, 24u);
    EXPECT_GT(r.avgRequestLatency, 0.0);
    EXPECT_GE(r.p95RequestLatency, r.avgRequestLatency);
}

TEST(Prefill, FlopsQuadraticInContext)
{
    auto model = LlmConfig::llm7b(false);
    double f1 = prefillFlops(model, 10000);
    double f2 = prefillFlops(model, 20000);
    // Superlinear growth from the attention term.
    EXPECT_GT(f2, 2.0 * f1);
    EXPECT_LT(f2, 4.5 * f1);
}

TEST(Prefill, NpuMuchFasterThanPnm)
{
    auto model = LlmConfig::llm7b(false);
    double npu = prefillSeconds(model, 60000, XpuConfig::neupimsNpu(), 4);
    double pnm = prefillSeconds(model, 60000, XpuConfig::centPnm(), 8);
    EXPECT_GT(pnm, 10.0 * npu); // 256 vs 3 TFLOPS per engine
    EXPECT_EQ(prefillSeconds(model, 0, XpuConfig::centPnm(), 8), 0.0);
}

TEST(Prefill, ChargedWhenRequested)
{
    auto model = LlmConfig::llm7b(true);
    auto cluster = ClusterConfig::neupimsLike(model);
    applyOptions(cluster, PimphonyOptions::all());
    auto reqs = uniformRequests(4, 40000, 8);
    EngineOptions opts;
    opts.allocator = AllocatorKind::LazyChunk;

    ServingEngine without(cluster, model, reqs, opts);
    auto r0 = without.run();
    EXPECT_DOUBLE_EQ(r0.prefillSeconds, 0.0);

    opts.chargePrefill = true;
    ServingEngine with(cluster, model, reqs, opts);
    auto r1 = with.run();
    EXPECT_GT(r1.prefillSeconds, 0.0);
    EXPECT_GT(r1.simulatedSeconds, r0.simulatedSeconds);
    EXPECT_LT(r1.tokensPerSecond, r0.tokensPerSecond);
}

TEST(OpenLoop, PreemptedRequestKeepsArrivalTime)
{
    auto model = LlmConfig::llm7b(true);
    auto cluster = ClusterConfig::centLike(model);
    cluster.nModules = 2;
    cluster.plan = ParallelPlan{2, 1};
    applyOptions(cluster, PimphonyOptions::all());

    Bytes usable = cluster.usableKvBytes(model);
    Tokens per_req = usable / model.kvBytesPerToken() / 2;
    auto reqs = uniformRequests(2, per_req - 8, 1024);
    EngineOptions opts;
    opts.allocator = AllocatorKind::LazyChunk;
    ServingEngine engine(cluster, model, reqs, opts);
    auto r = engine.run();
    // Both eventually finish (possibly after preemption) and their
    // latencies span the full serialized execution.
    EXPECT_EQ(r.completedRequests + r.rejectedRequests, 2u);
    if (r.completedRequests == 2) {
        EXPECT_GT(r.p95RequestLatency, r.avgRequestLatency * 0.99);
    }
}

} // namespace
} // namespace pimphony
