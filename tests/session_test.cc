/**
 * @file
 * Tests for closed-loop multi-turn sessions: a successor turn is
 * released only after its predecessor completes (plus think time),
 * rejected predecessors keep the rest of their session unreleased,
 * the whole pipeline (build -> save -> load -> run) is deterministic
 * bit for bit, and the fleet keeps every session on one replica.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <vector>

#include "system/engine.hh"
#include "system/fleet.hh"
#include "workload/replay.hh"
#include "workload/spec.hh"

namespace pimphony {
namespace {

LlmConfig
testModel()
{
    return LlmConfig::llm7b(true);
}

ClusterConfig
testCluster(const LlmConfig &model)
{
    auto cluster = ClusterConfig::neupimsLike(model);
    cluster.plan = ParallelPlan{cluster.nModules / 2, 2};
    applyOptions(cluster, PimphonyOptions::all());
    return cluster;
}

EngineOptions
testEngineOptions()
{
    EngineOptions opts;
    opts.allocator = AllocatorKind::LazyChunk;
    opts.stepModel = StepModel::EventDriven;
    opts.prefillChunkTokens = 2048;
    return opts;
}

BuiltWorkload
sessionWorkload(std::size_t n_sessions, unsigned turns,
                std::uint64_t seed)
{
    WorkloadSpec spec;
    spec.count = n_sessions;
    spec.length.kind = LengthSourceKind::Pairs;
    spec.length.pairs = {{2000, 16}, {4000, 16}};
    spec.arrival.kind = ArrivalKind::Poisson;
    spec.arrival.ratePerSecond = 8.0;
    spec.session.turns = turns;
    spec.session.thinkMeanSeconds = 0.2;
    return buildWorkload(spec, seed);
}

EngineResult
runWithSessions(const ClusterConfig &cluster, const LlmConfig &model,
                const BuiltWorkload &built)
{
    ServingEngine engine(cluster, model, built.initial,
                         testEngineOptions());
    engine.declareSessionTurns(built.sessions);
    return engine.run();
}

/** The fleet_test comparison surface plus the completion-time map. */
void
expectSameResult(const EngineResult &a, const EngineResult &b)
{
    EXPECT_EQ(a.tokensPerSecond, b.tokensPerSecond);
    EXPECT_EQ(a.simulatedSeconds, b.simulatedSeconds);
    EXPECT_EQ(a.generatedTokens, b.generatedTokens);
    EXPECT_EQ(a.completedRequests, b.completedRequests);
    EXPECT_EQ(a.rejectedRequests, b.rejectedRequests);
    EXPECT_EQ(a.preemptions, b.preemptions);
    EXPECT_EQ(a.avgEffectiveBatch, b.avgEffectiveBatch);
    EXPECT_EQ(a.macUtilization, b.macUtilization);
    EXPECT_EQ(a.capacityUtilization, b.capacityUtilization);
    EXPECT_EQ(a.avgRequestLatency, b.avgRequestLatency);
    EXPECT_EQ(a.p95RequestLatency, b.p95RequestLatency);
    EXPECT_EQ(a.avgFirstTokenSeconds, b.avgFirstTokenSeconds);
    EXPECT_EQ(a.p95FirstTokenSeconds, b.p95FirstTokenSeconds);
    EXPECT_EQ(a.avgTokenGapSeconds, b.avgTokenGapSeconds);
    EXPECT_EQ(a.p95TokenGapSeconds, b.p95TokenGapSeconds);
    EXPECT_EQ(a.simEvents, b.simEvents);
    EXPECT_EQ(a.firstTokenLatency, b.firstTokenLatency);
    EXPECT_EQ(a.completionSeconds, b.completionSeconds);
}

// --- Turn release ordering. --------------------------------------------

TEST(Sessions, SuccessorCompletesAfterPredecessorPlusThink)
{
    auto model = testModel();
    auto cluster = testCluster(model);
    auto built = sessionWorkload(6, 3, 17);
    auto r = runWithSessions(cluster, model, built);

    // Every turn of every session completes: 6 sessions x 3 turns.
    EXPECT_EQ(r.completedRequests, 18u);
    EXPECT_EQ(r.rejectedRequests, 0u);
    ASSERT_EQ(r.completionSeconds.size(), 18u);

    // The successor arrives at completion(pred) + think, so its own
    // completion is strictly later than that release time.
    for (const auto &kv : built.sessions) {
        auto pred = r.completionSeconds.find(kv.first);
        auto succ = r.completionSeconds.find(kv.second.request.id);
        ASSERT_NE(pred, r.completionSeconds.end()) << kv.first;
        ASSERT_NE(succ, r.completionSeconds.end())
            << kv.second.request.id;
        EXPECT_GT(succ->second,
                  pred->second + kv.second.thinkSeconds)
            << "turn " << kv.second.request.turn << " of session "
            << kv.second.request.session;
    }
}

TEST(Sessions, RejectedPredecessorKeepsSessionUnreleased)
{
    auto model = testModel();
    auto cluster = testCluster(model);

    // Turn 0 can never fit (context far beyond KV capacity), so the
    // successor the user would have typed after its answer never
    // arrives.
    Request head(0, 100000000, 16);
    head.session = 1;
    head.turn = 0;
    Request next(1, 2000, 16);
    next.session = 1;
    next.turn = 1;
    BuiltWorkload built;
    built.initial = {{head, 0.0}};
    built.sessions.emplace(0, SessionTurn{next, 0.1});

    auto r = runWithSessions(cluster, model, built);
    EXPECT_EQ(r.rejectedRequests, 1u);
    EXPECT_EQ(r.completedRequests, 0u);
    EXPECT_TRUE(r.completionSeconds.empty());
    EXPECT_EQ(r.firstTokenLatency.count(1), 0u);
}

TEST(Sessions, ClosedLoopRequiresEventDriven)
{
    auto model = testModel();
    auto cluster = testCluster(model);
    auto built = sessionWorkload(2, 2, 5);
    auto opts = testEngineOptions();
    opts.stepModel = StepModel::Analytic;
    opts.prefillChunkTokens = 0;
    ServingEngine engine(cluster, model, built.initial, opts);
    EXPECT_DEATH(engine.declareSessionTurns(built.sessions),
                 "event-driven");
}

// --- Determinism. ------------------------------------------------------

TEST(Sessions, RunTwiceIsBitIdentical)
{
    auto model = testModel();
    auto cluster = testCluster(model);
    auto built = sessionWorkload(6, 3, 21);
    auto a = runWithSessions(cluster, model, built);
    auto b = runWithSessions(cluster, model, built);
    ASSERT_GT(a.completedRequests, 0u);
    expectSameResult(a, b);
}

TEST(Sessions, TraceSaveLoadRunIsBitIdentical)
{
    auto model = testModel();
    auto cluster = testCluster(model);
    auto built = sessionWorkload(5, 2, 23);

    const char *path = "SESSION_TRACE_TEST.tmp";
    saveWorkload(path, built);
    BuiltWorkload loaded = loadWorkload(path);
    std::remove(path);

    auto generated = runWithSessions(cluster, model, built);
    auto replayed = runWithSessions(cluster, model, loaded);
    ASSERT_GT(generated.completedRequests, 0u);
    expectSameResult(generated, replayed);
}

// --- Fleet integration: session affinity. ------------------------------

TEST(Sessions, OneReplicaFleetMatchesBareEngine)
{
    auto model = testModel();
    auto cluster = testCluster(model);
    auto built = sessionWorkload(6, 3, 29);

    auto bare = runWithSessions(cluster, model, built);

    FleetOptions fopts;
    fopts.replicas = 1;
    fopts.dispatchLatencySeconds = 0.0;
    fopts.engine = testEngineOptions();
    FleetEngine fleet(cluster, model, built.initial, fopts);
    fleet.setSessions(built.sessions);
    auto out = fleet.run();

    ASSERT_EQ(out.replicas.size(), 1u);
    ASSERT_EQ(out.routedSessions.size(), 1u);
    EXPECT_EQ(out.routedSessions[0], 6u);
    expectSameResult(out.replicas[0], bare);
    expectSameResult(out.aggregate, bare);
}

TEST(Sessions, FleetKeepsEverySessionOnOneReplica)
{
    auto model = testModel();
    auto cluster = testCluster(model);
    auto built = sessionWorkload(8, 3, 31);

    for (RoutePolicy policy :
         {RoutePolicy::RoundRobin, RoutePolicy::LeastLoaded}) {
        FleetOptions fopts;
        fopts.replicas = 3;
        fopts.policy = policy;
        fopts.dispatchLatencySeconds = 0.004;
        fopts.engine = testEngineOptions();
        FleetEngine fleet(cluster, model, built.initial, fopts);
        fleet.setSessions(built.sessions);
        auto out = fleet.run();

        // All 8 x 3 turns complete, and the distinct-session pin
        // counts account for every session exactly once.
        EXPECT_EQ(out.aggregate.completedRequests, 24u);
        std::uint64_t pinned = 0;
        for (std::uint64_t n : out.routedSessions)
            pinned += n;
        EXPECT_EQ(pinned, 8u);

        // A successor turn always completes on the replica where its
        // predecessor completed (the closed-loop release fires
        // locally), so sessions never straddle replicas.
        for (const auto &kv : built.sessions) {
            int pred_replica = -1, succ_replica = -1;
            for (std::size_t i = 0; i < out.replicas.size(); ++i) {
                if (out.replicas[i].completionSeconds.count(kv.first))
                    pred_replica = static_cast<int>(i);
                if (out.replicas[i].completionSeconds.count(
                        kv.second.request.id))
                    succ_replica = static_cast<int>(i);
            }
            ASSERT_GE(pred_replica, 0) << kv.first;
            EXPECT_EQ(pred_replica, succ_replica)
                << "session " << kv.second.request.session;
        }
    }
}

} // namespace
} // namespace pimphony
