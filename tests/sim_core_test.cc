/**
 * @file
 * Tests for the event-driven serving core: the sim primitives
 * (event queue, devices, stage pipeline), the anchor contract that
 * the event-driven engine reproduces the analytic engine on PP=1
 * and beats it on a heterogeneous PP>1 deployment, and the
 * open-loop behaviors (late arrivals, preemption re-queue, latency
 * percentile edge cases).
 */

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "common/stats.hh"
#include "sim/device.hh"
#include "sim/event_queue.hh"
#include "sim/pipeline.hh"
#include "sim/ring_buffer.hh"
#include "sim/small_fn.hh"
#include "system/engine.hh"
#include "system/stage_device.hh"
#include "workload/arrival.hh"

namespace pimphony {
namespace {

// --- Event queue. ----------------------------------------------------

TEST(EventQueue, DispatchesInTimeOrder)
{
    sim::EventQueue q;
    std::vector<int> order;
    q.schedule(3.0, [&](double) { order.push_back(3); });
    q.schedule(1.0, [&](double) { order.push_back(1); });
    q.schedule(2.0, [&](double) { order.push_back(2); });
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, SimultaneousEventsRunFifo)
{
    sim::EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(1.0, [&order, i](double) { order.push_back(i); });
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, FifoTiesUnderPooledEvents)
{
    // Pooled/small-buffer event storage must preserve the
    // (time, insertion-order) contract: same-time events of mixed
    // callback sizes run FIFO, including events scheduled from
    // inside callbacks (which reuse freed heap slots) and after the
    // backing vector grows.
    sim::EventQueue q;
    std::vector<int> order;
    struct Big
    {
        double pad[4];
    };
    Big big{{0, 0, 0, 0}};
    for (int i = 0; i < 32; ++i) {
        if (i % 2 == 0) {
            q.schedule(1.0, [&order, i](double) { order.push_back(i); });
        } else {
            q.schedule(1.0, [&order, i, big](double) {
                order.push_back(i + static_cast<int>(big.pad[0]));
            });
        }
    }
    // A later-scheduled earlier-time event still runs first...
    q.schedule(0.5, [&order](double) { order.push_back(-1); });
    // ...and events scheduled from within a callback at the same
    // time run after everything already queued at that time.
    q.schedule(1.0, [&](double) {
        q.schedule(1.0, [&order](double) { order.push_back(100); });
    });
    q.runAll();
    ASSERT_EQ(order.size(), 34u);
    EXPECT_EQ(order.front(), -1);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i) + 1], i);
    EXPECT_EQ(order.back(), 100);
    EXPECT_EQ(q.dispatched(), 35u);
}

TEST(EventQueue, RunUntilHorizonIsInclusive)
{
    sim::EventQueue q;
    std::vector<int> order;
    q.schedule(1.0, [&](double) { order.push_back(1); });
    q.schedule(2.0, [&](double) { order.push_back(2); });
    q.schedule(3.0, [&](double) { order.push_back(3); });
    q.runUntil(2.0); // inclusive: dispatches 1.0 and 2.0
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(q.pending(), 1u);
    // now() stays at the last dispatched event, not the horizon, so
    // a schedule() between windows is never clamped forward.
    EXPECT_DOUBLE_EQ(q.now(), 2.0);
    q.runUntil(2.5); // nothing at or before 2.5 remains
    EXPECT_EQ(q.pending(), 1u);
    q.runUntil(3.0);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, InterleavedRunUntilMatchesRunAll)
{
    // Chained events (each schedules the next) dispatched through a
    // sequence of increasing horizons must replay exactly the
    // runAll() order — the property the fleet's conservative
    // windows rely on.
    auto build = [](sim::EventQueue &q, std::vector<double> &times) {
        for (int i = 0; i < 4; ++i) {
            double t = 0.3 * i;
            q.schedule(t, [&q, &times, t](double now) {
                times.push_back(now);
                q.schedule(t + 0.45, [&times](double inner) {
                    times.push_back(inner);
                });
            });
        }
    };
    sim::EventQueue serial;
    std::vector<double> serial_times;
    build(serial, serial_times);
    serial.runAll();

    sim::EventQueue windowed;
    std::vector<double> windowed_times;
    build(windowed, windowed_times);
    for (double h = 0.25; !windowed.empty(); h += 0.25)
        windowed.runUntil(h);
    EXPECT_EQ(windowed_times, serial_times);
    EXPECT_EQ(windowed.dispatched(), serial.dispatched());
}

TEST(EventQueue, RunUntilOnEmptyQueueIsANoOp)
{
    sim::EventQueue q;
    q.runUntil(5.0);
    EXPECT_TRUE(q.empty());
    EXPECT_DOUBLE_EQ(q.now(), 0.0);
    // A pre-horizon queue is untouched by an earlier horizon.
    q.schedule(10.0, [](double) {});
    q.runUntil(5.0);
    EXPECT_EQ(q.pending(), 1u);
    EXPECT_EQ(q.dispatched(), 0u);
}

TEST(SmallFn, InlineCallbacksNeverTouchTheHeap)
{
    std::uint64_t before = sim::smallFnHeapAllocs();
    int hits = 0;
    // Typical hot-path capture sets: one pointer, two pointers plus
    // a double, a shared_ptr plus references.
    sim::SimFn a([&hits](double) { ++hits; });
    void *p1 = &hits;
    void *p2 = &a;
    double x = 1.5;
    sim::SimFn b([p1, p2, x, &hits](double) { ++hits; });
    auto sp = std::make_shared<int>(7);
    sim::SimFn c([sp, &hits](double) { hits += *sp; });
    a(0.0);
    b(0.0);
    c(0.0);
    // Moving between SmallFns (stored completion -> event queue) is
    // a relocation, not a re-erasure.
    sim::SimFn d(std::move(c));
    d(0.0);
    EXPECT_EQ(hits, 16);
    EXPECT_EQ(sim::smallFnHeapAllocs(), before);

    // An oversized capture falls back to the heap -- and is counted,
    // which is what the decode-path assertions below key on.
    struct Huge
    {
        double pad[16];
    };
    Huge huge{};
    huge.pad[0] = 1.0;
    sim::SimFn e([huge, &hits](double) {
        hits += static_cast<int>(huge.pad[0]);
    });
    e(0.0);
    EXPECT_EQ(hits, 17);
    EXPECT_EQ(sim::smallFnHeapAllocs(), before + 1);
}

TEST(SmallFn, HeapAllocCounterIsPerThread)
{
    // The zero-alloc assertions above key on the calling thread's
    // counter staying flat; a sweep-runner worker heap-allocating on
    // another thread must not perturb it. The aggregate counter
    // still observes every thread's fallbacks.
    std::uint64_t local_before = sim::smallFnHeapAllocs();
    std::uint64_t total_before = sim::smallFnHeapAllocsTotal();

    std::thread worker([]() {
        struct Huge
        {
            double pad[16];
        };
        Huge huge{};
        huge.pad[0] = 2.0;
        int sink = 0;
        sim::SimFn f([huge, &sink](double) {
            sink += static_cast<int>(huge.pad[0]);
        });
        f(0.0);
        EXPECT_EQ(sink, 2);
        // The worker's own thread-local counter saw the fallback.
        EXPECT_GE(sim::smallFnHeapAllocs(), 1u);
    });
    worker.join();

    EXPECT_EQ(sim::smallFnHeapAllocs(), local_before);
    EXPECT_GE(sim::smallFnHeapAllocsTotal(), total_before + 1);
}

TEST(SmallFn, DecodePathIsCallbackAllocationFree)
{
    // The acceptance contract of the PR 4 hot-path overhaul: a full
    // event-driven serving run -- decode cycles, chunked prefill,
    // arrivals, and an arbitrated policy -- never heap-allocates
    // callback storage. Every closure on the path fits the SimFn
    // small buffer; a capture that grows past it would trip the
    // counter here.
    auto model = LlmConfig::llm7b(true);
    for (SchedPolicyKind kind :
         {SchedPolicyKind::Fifo, SchedPolicyKind::SloAdmission,
          SchedPolicyKind::ChunkPreempt}) {
        auto cluster = ClusterConfig::neupimsLike(model);
        cluster.plan = ParallelPlan{cluster.nModules / 4, 4};
        applyOptions(cluster, PimphonyOptions::all());
        std::vector<Request> reqs;
        for (RequestId i = 0; i < 32; ++i)
            reqs.push_back({i, (i % 4 == 0) ? Tokens(30000)
                                            : Tokens(2000),
                            16});
        auto timed = gammaArrivals(reqs, 4.0, 3.0, 17);
        EngineOptions opts;
        opts.allocator = AllocatorKind::LazyChunk;
        opts.stepModel = StepModel::EventDriven;
        opts.prefillChunkTokens = 2048;
        opts.sched.kind = kind;

        std::uint64_t before = sim::smallFnHeapAllocs();
        auto r = ServingEngine(cluster, model, timed, opts).run();
        EXPECT_EQ(sim::smallFnHeapAllocs(), before)
            << "policy " << schedPolicyName(kind)
            << " heap-allocated callback storage on the decode path";
        EXPECT_EQ(r.completedRequests, 32u);
    }
}

TEST(RingQueue, FifoAcrossGrowthAndWraparound)
{
    sim::RingQueue<int> q;
    EXPECT_TRUE(q.empty());
    // Interleaved push/pop drives head_ around the buffer while the
    // queue grows past its initial capacity.
    int next_push = 0, next_pop = 0;
    for (int round = 0; round < 100; ++round) {
        for (int i = 0; i < 3; ++i)
            q.push(next_push++);
        for (int i = 0; i < (round % 3 == 0 ? 1 : 2); ++i) {
            ASSERT_FALSE(q.empty());
            EXPECT_EQ(q.front(), next_pop++);
            q.pop();
        }
    }
    while (!q.empty()) {
        EXPECT_EQ(q.front(), next_pop++);
        q.pop();
    }
    EXPECT_EQ(next_pop, next_push);
}

TEST(EventQueue, PastTimesClampToNow)
{
    sim::EventQueue q;
    double ran_at = -1.0;
    q.schedule(2.0, [&](double t) {
        // Scheduling "in the past" from inside an event runs at now.
        q.schedule(0.5, [&](double t2) { ran_at = t2; });
        (void)t;
    });
    q.runAll();
    EXPECT_DOUBLE_EQ(ran_at, 2.0);
}

// --- Device timeline. ------------------------------------------------

TEST(Device, FifoSerialization)
{
    sim::EventQueue q;
    sim::Device dev("d");
    sim::WorkItem a;
    a.seconds = 2.0;
    sim::WorkItem b;
    b.seconds = 1.0;
    double done_a = dev.submit(q, a, 0.0);
    // b is ready at 0.5 but must wait for a.
    double done_b = dev.submit(q, b, 0.5);
    EXPECT_DOUBLE_EQ(done_a, 2.0);
    EXPECT_DOUBLE_EQ(done_b, 3.0);
    EXPECT_DOUBLE_EQ(dev.busyUntil(), 3.0);
    EXPECT_DOUBLE_EQ(dev.busySeconds(), 3.0);
    q.runAll();
    EXPECT_EQ(dev.completedItems(), 2u);
}

TEST(Device, CompletionCallbackAtCompletionTime)
{
    sim::EventQueue q;
    sim::Device dev("d");
    sim::WorkItem w;
    w.seconds = 4.0;
    double completed_at = -1.0;
    dev.submit(q, w, 1.0, [&](double t) { completed_at = t; });
    q.runAll();
    EXPECT_DOUBLE_EQ(completed_at, 5.0);
}

// --- Stage pipeline overlap. -----------------------------------------

TEST(StagePipeline, CohortsOverlapAcrossStages)
{
    sim::EventQueue q;
    sim::Device s0("s0"), s1("s1");
    sim::StagePipeline pipe({&s0, &s1});

    double done0 = -1.0, done1 = -1.0;
    sim::WorkItem a;
    a.cohort = 0;
    a.seconds = 1.0;
    sim::WorkItem b;
    b.cohort = 1;
    b.seconds = 1.0;
    pipe.submitCycle(q, a, 0.0, [&](double t) { done0 = t; });
    pipe.submitCycle(q, b, 0.0, [&](double t) { done1 = t; });
    q.runAll();
    // b enters stage 0 at t=1 while a occupies stage 1 -> b finishes
    // at 3, not at 4 as a serialized schedule would.
    EXPECT_DOUBLE_EQ(done0, 2.0);
    EXPECT_DOUBLE_EQ(done1, 3.0);
}

TEST(StagePipeline, SubmitChainOnSingleStageMatchesDeviceSubmit)
{
    // PP=1: a chain degenerates to one device submission — same
    // completion time, one completed item, stage index stamped.
    sim::EventQueue q;
    sim::Device s0("s0");
    sim::StagePipeline pipe({&s0});
    std::vector<sim::WorkItem> items(1);
    items[0].seconds = 2.0;
    items[0].stage = 7; // overwritten by the chain
    double done = -1.0;
    pipe.submitChain(q, items, 1.0, [&](double t) { done = t; });
    q.runAll();
    EXPECT_DOUBLE_EQ(done, 3.0);
    EXPECT_EQ(s0.completedItems(), 1u);
    EXPECT_DOUBLE_EQ(s0.busySeconds(), 2.0);
}

TEST(StagePipeline, SequenceOnSingleStageRunsElementsBackToBack)
{
    // PP=1: stage 0 is also the last stage, so element k+1 enters at
    // element k's completion — chunk pipelining degenerates to
    // serial execution without gaps or overlap.
    sim::EventQueue q;
    sim::Device s0("s0");
    sim::StagePipeline pipe({&s0});
    auto element = [](double sec) {
        std::vector<sim::WorkItem> row(1);
        row[0].seconds = sec;
        return row;
    };
    double done = -1.0;
    pipe.submitSequence(q, {element(1.0), element(2.0), element(0.5)},
                        0.0, [&](double t) { done = t; });
    q.runAll();
    EXPECT_DOUBLE_EQ(done, 3.5);
    EXPECT_EQ(s0.completedItems(), 3u);
}

TEST(StagePipeline, TwoSequencesInterleaveElementWise)
{
    // Two requests' chunk streams on one stage interleave FIFO at
    // element granularity: A0 B0 A1 B1, because each stream only
    // submits its next element at the previous one's stage-0
    // completion event.
    sim::EventQueue q;
    sim::Device s0("s0");
    sim::StagePipeline pipe({&s0});
    auto element = [](double sec) {
        std::vector<sim::WorkItem> row(1);
        row[0].seconds = sec;
        return row;
    };
    double a_done = -1.0, b_done = -1.0;
    pipe.submitSequence(q, {element(1.0), element(1.0)}, 0.0,
                        [&](double t) { a_done = t; });
    pipe.submitSequence(q, {element(1.0), element(1.0)}, 0.0,
                        [&](double t) { b_done = t; });
    q.runAll();
    // A0 [0,1], B0 [1,2], A1 [2,3], B1 [3,4].
    EXPECT_DOUBLE_EQ(a_done, 3.0);
    EXPECT_DOUBLE_EQ(b_done, 4.0);
    EXPECT_DOUBLE_EQ(s0.busySeconds(), 4.0);
}

TEST(ChunkedPrefillEdge, ZeroContextRequestSkipsPrefill)
{
    // A zero-context request has a zero-chunk prefill plan: it must
    // enter the decode pool immediately (TTFT ~ one decode cycle)
    // while a long-context peer pays its chunked prefill first.
    auto model = LlmConfig::llm7b(true);
    auto cluster = ClusterConfig::neupimsLike(model);
    applyOptions(cluster, PimphonyOptions::all());
    std::vector<Request> reqs{{0, 0, 8}, {1, 20000, 8}};

    EngineOptions opts;
    opts.allocator = AllocatorKind::LazyChunk;
    opts.stepModel = StepModel::EventDriven;
    opts.prefillChunkTokens = 2048;
    auto r = ServingEngine(cluster, model, reqs, opts).run();
    EXPECT_EQ(r.completedRequests, 2u);
    EXPECT_EQ(r.generatedTokens, 16u);
    ASSERT_EQ(r.firstTokenLatency.count(0), 1u);
    ASSERT_EQ(r.firstTokenLatency.count(1), 1u);
    EXPECT_GT(r.prefillSeconds, 0.0); // request 1 only
    EXPECT_LT(r.firstTokenLatency.at(0),
              0.5 * r.firstTokenLatency.at(1));
}

TEST(PipelineStage, XpuShadowTrailsPimTimeline)
{
    PimModuleConfig mcfg;
    PimModuleModel pim(mcfg);
    XpuModel xpu(XpuConfig::neupimsNpu());
    PipelineStage stage("s", pim, &xpu);

    sim::EventQueue q;
    sim::WorkItem w;
    w.seconds = 2.0;
    w.fcSeconds = 0.5;
    double done = stage.submit(q, w, 0.0);
    EXPECT_DOUBLE_EQ(done, 2.0);
    // The FC share lands on the xPU timeline without gating the stage.
    ASSERT_NE(stage.xpu(), nullptr);
    EXPECT_DOUBLE_EQ(stage.xpu()->busySeconds(), 0.5);
    EXPECT_LE(stage.xpu()->busyUntil(), stage.busyUntil());
}

// --- Engine anchors: event-driven vs analytic. -----------------------

std::vector<Request>
uniformRequests(std::size_t n, Tokens context, Tokens decode)
{
    std::vector<Request> out;
    for (std::size_t i = 0; i < n; ++i)
        out.push_back({static_cast<RequestId>(i), context, decode});
    return out;
}

TEST(StepModels, AgreeOnPp1PimOnly)
{
    auto model = LlmConfig::llm7b(true);
    auto cluster = ClusterConfig::centLike(model);
    applyOptions(cluster, PimphonyOptions::all());
    std::vector<Request> reqs;
    for (RequestId i = 0; i < 8; ++i)
        reqs.push_back({i, 20000 + 5000 * static_cast<Tokens>(i), 16});

    EngineOptions opts;
    opts.allocator = AllocatorKind::LazyChunk;
    opts.stepModel = StepModel::Analytic;
    auto a = ServingEngine(cluster, model, reqs, opts).run();
    opts.stepModel = StepModel::EventDriven;
    auto e = ServingEngine(cluster, model, reqs, opts).run();

    ASSERT_GT(a.tokensPerSecond, 0.0);
    EXPECT_NEAR(e.tokensPerSecond / a.tokensPerSecond, 1.0, 0.01);
    EXPECT_NEAR(e.macUtilization, a.macUtilization, 0.01);
    EXPECT_NEAR(e.avgEffectiveBatch, a.avgEffectiveBatch,
                0.01 * a.avgEffectiveBatch);
    EXPECT_EQ(e.completedRequests, a.completedRequests);
    EXPECT_EQ(e.generatedTokens, a.generatedTokens);
}

TEST(StepModels, AgreeOnPp1XpuPim)
{
    auto model = LlmConfig::llm7b(true);
    auto cluster = ClusterConfig::neupimsLike(model);
    applyOptions(cluster, PimphonyOptions::all());
    auto reqs = uniformRequests(6, 30000, 12);

    EngineOptions opts;
    opts.allocator = AllocatorKind::LazyChunk;
    opts.stepModel = StepModel::Analytic;
    auto a = ServingEngine(cluster, model, reqs, opts).run();
    opts.stepModel = StepModel::EventDriven;
    auto e = ServingEngine(cluster, model, reqs, opts).run();

    ASSERT_GT(a.tokensPerSecond, 0.0);
    EXPECT_NEAR(e.tokensPerSecond / a.tokensPerSecond, 1.0, 0.01);
}

TEST(StepModels, EventDrivenBeatsAnalyticOnPp4Heterogeneous)
{
    // PP=4 with memory turnover and bimodal context lengths: the
    // ready pool forms homogeneous cohorts of two, fewer cohorts
    // than stages are in flight, and the analytic model pads every
    // stage beat to the slowest micro-batch while the event-driven
    // pipeline lets short-context cohorts cycle, retire, and pull
    // pending work at their own pace.
    auto model = LlmConfig::llm7b(true);
    auto cluster = ClusterConfig::centLike(model);
    cluster.nModules = 4;
    cluster.plan = ParallelPlan{1, 4};
    const Tokens short_ctx = 2000, long_ctx = 64000, decode = 32;
    Bytes per_req = model.kvBytesPerToken() * (long_ctx + decode);
    Bytes kv_budget = static_cast<Bytes>(3.2 * static_cast<double>(per_req));
    cluster.module.capacityBytes =
        (kv_budget + model.weightBytes()) / cluster.nModules + 1;
    applyOptions(cluster, PimphonyOptions::all());

    std::vector<Request> reqs;
    for (RequestId i = 0; i < 32; ++i)
        reqs.push_back({i, ((i / 2) % 2 == 0) ? short_ctx : long_ctx,
                        decode});

    EngineOptions opts;
    opts.allocator = AllocatorKind::LazyChunk;
    opts.stepModel = StepModel::Analytic;
    auto a = ServingEngine(cluster, model, reqs, opts).run();
    opts.stepModel = StepModel::EventDriven;
    auto e = ServingEngine(cluster, model, reqs, opts).run();

    EXPECT_EQ(a.completedRequests, 32u);
    EXPECT_EQ(e.completedRequests, 32u);
    ASSERT_GT(a.tokensPerSecond, 0.0);
    EXPECT_GE(e.tokensPerSecond, 1.05 * a.tokensPerSecond);
}

// --- Open-loop coverage. ---------------------------------------------

TEST(OpenLoopEvent, IdlesUntilFirstArrival)
{
    auto model = LlmConfig::llm7b(true);
    auto cluster = ClusterConfig::centLike(model);
    applyOptions(cluster, PimphonyOptions::all());
    std::vector<TimedRequest> timed;
    timed.push_back({{0, 20000, 8}, 5.0});
    timed.push_back({{1, 20000, 8}, 7.0});

    EngineOptions opts;
    opts.allocator = AllocatorKind::LazyChunk;
    opts.stepModel = StepModel::EventDriven;
    auto r = ServingEngine(cluster, model, timed, opts).run();
    EXPECT_EQ(r.completedRequests, 2u);
    // The clock idles to the arrivals instead of starting at zero.
    EXPECT_GE(r.simulatedSeconds, 7.0);
    EXPECT_LT(r.avgRequestLatency, 2.0);
}

TEST(OpenLoopEvent, PreemptionRequeuesWithOriginalArrival)
{
    // Two small-context, long-decode requests into a KV budget that
    // admits both (the headroom check sees the second request's full
    // trajectory next to the first one's *current* chunks) but
    // cannot hold both full trajectories: one request is preempted
    // mid-decode and re-queued. Its latency must span from the
    // original arrival, so the last completion's latency is almost
    // the whole simulated span; re-queuing with the preemption time
    // would cut it roughly in half.
    auto model = LlmConfig::llm7b(true);
    const Tokens ctx = 1000, decode = 2000;
    auto cluster = ClusterConfig::centLike(model);
    cluster.nModules = 2;
    cluster.plan = ParallelPlan{2, 1};
    Bytes kv_budget = model.kvBytesPerToken() * (2 * ctx + 2 * 1800);
    cluster.module.capacityBytes =
        (kv_budget + model.weightBytes()) / cluster.nModules + 1;
    applyOptions(cluster, PimphonyOptions::all());

    std::vector<TimedRequest> timed;
    timed.push_back({{0, ctx, decode}, 0.0});
    timed.push_back({{1, ctx, decode}, 0.01});

    for (StepModel sm : {StepModel::EventDriven, StepModel::Analytic}) {
        EngineOptions opts;
        opts.allocator = AllocatorKind::LazyChunk;
        opts.stepModel = sm;
        auto r = ServingEngine(cluster, model, timed, opts).run();
        EXPECT_GE(r.preemptions, 1u) << stepModelName(sm);
        EXPECT_EQ(r.completedRequests, 2u) << stepModelName(sm);
        EXPECT_EQ(r.rejectedRequests, 0u) << stepModelName(sm);
        // Nearest-rank p95 of two samples is the max latency: the
        // preempted request restarts, finishes last, and its latency
        // reaches back to its original arrival near time zero.
        EXPECT_GE(r.p95RequestLatency, 0.9 * r.simulatedSeconds)
            << stepModelName(sm);
    }
}

TEST(LatencyPercentiles, NearestRankEdgeCases)
{
    // 1-element sample: every percentile is the only value.
    EXPECT_DOUBLE_EQ(nearestRankPercentile({42.0}, 95.0), 42.0);
    EXPECT_DOUBLE_EQ(nearestRankPercentile({42.0}, 1.0), 42.0);

    // 20-element sample: ceil(0.95 * 20) = 19 -> the 19th smallest,
    // not the max.
    std::vector<double> v;
    for (int i = 1; i <= 20; ++i)
        v.push_back(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(nearestRankPercentile(v, 95.0), 19.0);
    EXPECT_DOUBLE_EQ(nearestRankPercentile(v, 100.0), 20.0);
    EXPECT_DOUBLE_EQ(nearestRankPercentile(v, 5.0), 1.0);
    EXPECT_DOUBLE_EQ(nearestRankPercentile({}, 95.0), 0.0);
}

TEST(LatencyPercentiles, SingleRequestP95EqualsAverage)
{
    auto model = LlmConfig::llm7b(true);
    auto cluster = ClusterConfig::centLike(model);
    applyOptions(cluster, PimphonyOptions::all());
    auto reqs = uniformRequests(1, 20000, 8);

    EngineOptions opts;
    opts.allocator = AllocatorKind::LazyChunk;
    auto r = ServingEngine(cluster, model, reqs, opts).run();
    EXPECT_EQ(r.completedRequests, 1u);
    EXPECT_GT(r.p95RequestLatency, 0.0);
    EXPECT_DOUBLE_EQ(r.p95RequestLatency, r.avgRequestLatency);
}

TEST(Arrivals, SortByArrivalIsStable)
{
    std::vector<TimedRequest> v;
    v.push_back({{0, 10, 1}, 2.0});
    v.push_back({{1, 11, 1}, 1.0});
    v.push_back({{2, 12, 1}, 1.0});
    sortByArrival(v);
    EXPECT_EQ(v[0].request.id, 1u);
    EXPECT_EQ(v[1].request.id, 2u);
    EXPECT_EQ(v[2].request.id, 0u);
}

} // namespace
} // namespace pimphony
