/**
 * @file
 * Tests for the request-class subsystem: per-request latency tiers,
 * tier-aware arbitration with decode-side preemption, per-class SLO
 * admission, and per-tenant admission budgets.
 *
 * The acceptance properties:
 *  (a) under an on/off burst with two tiers, tier-0's p95 decode gap
 *      is no worse than tier-1's and no worse than a single-class
 *      FIFO run of the same trace;
 *  (b) decode-side preemption conserves each sliced item's charge
 *      within 1% (it reuses the QueuedDevice slice machinery);
 *  (c) with per-tenant budgets a saturating tenant cannot push an
 *      active tenant's admitted-token share below its budget, while
 *      an idle tenant's share is borrowable (work conserving);
 *  (d) the subsystem is strictly additive: with every request in the
 *      default class and no budgets, the engine's metrics are
 *      bit-identical to a run without classes (the PR 4 goldens in
 *      tests/engine_determinism_test.cc pin the same property
 *      against the recorded history).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/orchestrator.hh"
#include "sim/device.hh"
#include "sim/event_queue.hh"
#include "system/engine.hh"
#include "system/sched_policy.hh"
#include "workload/arrival.hh"
#include "workload/request_class.hh"
#include "workload/trace.hh"

namespace pimphony {
namespace {

// --- Class plumbing. ---------------------------------------------------

TEST(RequestClass, DefaultsAndAssignment)
{
    RequestClass def;
    EXPECT_TRUE(def.isDefault());
    RequestClass tiered;
    tiered.tier = 1;
    EXPECT_FALSE(tiered.isDefault());
    RequestClass tenanted;
    tenanted.tenant = 3;
    EXPECT_FALSE(tenanted.isDefault());
    EXPECT_NE(tiered, tenanted);
    EXPECT_EQ(tiered, tiered);
    EXPECT_FALSE(requestClassLabel(tiered).empty());

    std::vector<Request> reqs;
    for (RequestId i = 0; i < 6; ++i)
        reqs.push_back({i, 1000, 16});
    for (const auto &r : reqs)
        EXPECT_TRUE(r.cls.isDefault());

    assignRequestClass(reqs, tiered);
    for (const auto &r : reqs)
        EXPECT_EQ(r.cls, tiered);

    RequestClass interactive;
    interactive.tier = 0;
    interactive.gapSloSeconds = 0.05;
    RequestClass batch;
    batch.tier = 1;
    batch.tenant = 1;
    assignRequestClassesRoundRobin(reqs, {interactive, batch});
    for (std::size_t i = 0; i < reqs.size(); ++i)
        EXPECT_EQ(reqs[i].cls, i % 2 ? batch : interactive) << i;

    // Generators stamp their configured class on every request.
    TraceGenerator gen(TraceTask::QMSum, 7);
    gen.setRequestClass(batch);
    for (const auto &r : gen.generate(8))
        EXPECT_EQ(r.cls, batch);
}

TEST(TierPolicy, PlumbingAndBands)
{
    SchedPolicyKind parsed = SchedPolicyKind::Fifo;
    ASSERT_TRUE(parseSchedPolicy("tier-priority", parsed));
    EXPECT_EQ(parsed, SchedPolicyKind::TierPriority);
    EXPECT_EQ(allSchedPolicies().back(), SchedPolicyKind::TierPriority);

    SchedPolicyConfig cfg;
    cfg.kind = SchedPolicyKind::TierPriority;
    cfg.preemptQuantumSeconds = 1e-3;
    cfg.tierPreemptQuantumSeconds = 2e-3;
    auto policy = makeSchedPolicy(cfg);
    ASSERT_NE(policy, nullptr);
    EXPECT_TRUE(policy->reordersXpu());
    EXPECT_FALSE(policy->needsGapSignal());

    // Band order: (tier, kind) ascending with decode before chunks
    // inside one tier; FIFO inside a band.
    auto decode = [](std::uint32_t tier) {
        sim::WorkItem w;
        w.seconds = 1.0;
        w.tier = tier;
        return w;
    };
    auto chunk = [](std::uint32_t tier) {
        sim::WorkItem w;
        w.kind = sim::WorkItem::Kind::PrefillChunk;
        w.seconds = 1.0;
        w.tier = tier;
        return w;
    };
    sim::WorkItem d0 = decode(0), d1 = decode(1);
    sim::WorkItem c0 = chunk(0), c1 = chunk(1);
    sim::WorkItem d0b = decode(0);
    // Tier-0 decode beats everything, including a tier-0 chunk
    // queued earlier.
    EXPECT_EQ(policy->pickNext({&c0, &d1, &d0}), 2u);
    // Tier-0 chunk beats tier-1 decode (strict bands).
    EXPECT_EQ(policy->pickNext({&d1, &c0}), 1u);
    // FIFO inside a band.
    EXPECT_EQ(policy->pickNext({&d0, &d0b}), 0u);
    EXPECT_EQ(policy->pickNext({&c1, &d1}), 1u);

    // Slicing: chunks at the chunk quantum, lower-tier decode at the
    // tier quantum, tier-0 decode never.
    EXPECT_DOUBLE_EQ(policy->sliceSeconds(c0), 1e-3);
    EXPECT_DOUBLE_EQ(policy->sliceSeconds(c1), 1e-3);
    EXPECT_DOUBLE_EQ(policy->sliceSeconds(d1), 2e-3);
    EXPECT_DOUBLE_EQ(policy->sliceSeconds(d0), 0.0);
}

// --- (b) Decode-side preemption: bounded inversion, exact charge. ------

/** Captures the completed WorkItem to observe preemption metadata. */
class CapturingDevice : public sim::QueuedDevice
{
  public:
    using sim::QueuedDevice::QueuedDevice;
    sim::WorkItem lastDecode;

  protected:
    void
    onComplete(const sim::WorkItem &item, double) override
    {
        if (item.kind == sim::WorkItem::Kind::DecodeCycle)
            lastDecode = item;
    }
};

TEST(TierPolicy, DecodePreemptionBoundsInversionAndConservesCharge)
{
    SchedPolicyConfig cfg;
    cfg.kind = SchedPolicyKind::TierPriority;
    cfg.tierPreemptQuantumSeconds = 0.5;
    TierPriorityPolicy policy(cfg);
    sim::EventQueue q;
    CapturingDevice dev("d", &policy);

    // A long tier-1 decode item is in service when a tier-0 decode
    // item arrives: the tier-0 item starts within one tier quantum
    // (the configured inversion bound), and the sliced tier-1 item
    // still receives its full charge.
    sim::WorkItem low;
    low.seconds = 10.0;
    low.tier = 1;
    double low_done = -1.0, high_done = -1.0;
    dev.submit(q, low, 0.0, [&](double t) { low_done = t; });
    q.schedule(0.2, [&](double) {
        sim::WorkItem high;
        high.seconds = 0.3;
        high.tier = 0;
        dev.submit(q, high, 0.2, [&](double t) { high_done = t; });
    });
    q.runAll();

    // low slices [0,0.5]; high waits 0.3 <= tier quantum and runs
    // [0.5,0.8]; low's remaining 9.5 s resume [0.8,10.3].
    EXPECT_DOUBLE_EQ(high_done, 0.8);
    EXPECT_DOUBLE_EQ(low_done, 10.3);
    EXPECT_GT(dev.decodePreemptionSlices(), 0u);
    EXPECT_EQ(dev.tierInversions(), 1u);
    EXPECT_LE(dev.maxTierInversionWaitSeconds(),
              cfg.tierPreemptQuantumSeconds + 1e-12);

    // Charge conservation within 1% (acceptance (b)); the slice
    // arithmetic is exact, so this holds to double precision.
    EXPECT_NEAR(dev.lastDecode.servedSeconds, 10.0, 0.01 * 10.0);
    EXPECT_NEAR(dev.lastDecode.servedSeconds, 10.0, 1e-9);
    EXPECT_GT(dev.lastDecode.slices, 1u);
    EXPECT_DOUBLE_EQ(dev.busySeconds(), 10.3);

    // Tier-0 decode is never sliced.
    EXPECT_EQ(dev.lastDecode.tier, 1u);
}

// --- Engine-level fixtures. --------------------------------------------

EngineResult
runEngine(const ClusterConfig &cluster, const LlmConfig &model,
          const std::vector<TimedRequest> &timed, Tokens chunk,
          const SchedPolicyConfig &sched,
          const std::vector<TenantBudget> &budgets = {})
{
    EngineOptions opts;
    opts.allocator = AllocatorKind::LazyChunk;
    opts.stepModel = StepModel::EventDriven;
    opts.prefillChunkTokens = chunk;
    opts.sched = sched;
    opts.tenantBudgets = budgets;
    return ServingEngine(cluster, model, timed, opts).run();
}

const EngineResult::ClassLatency &
tierRow(const EngineResult &r, unsigned tier)
{
    for (const auto &cl : r.classLatencies)
        if (cl.tier == tier)
            return cl;
    ADD_FAILURE() << "no classLatencies row for tier " << tier;
    static EngineResult::ClassLatency none;
    return none;
}

const EngineResult::TenantOccupancy &
tenantRow(const EngineResult &r, unsigned tenant)
{
    for (const auto &to : r.tenantOccupancy)
        if (to.tenant == tenant)
            return to;
    ADD_FAILURE() << "no tenantOccupancy row for tenant " << tenant;
    static EngineResult::TenantOccupancy none;
    return none;
}

// --- (a) Tier ordering under an on/off burst. --------------------------

TEST(SloClassesEngine, TierZeroGapBeatsTierOneAndSingleClassFifo)
{
    auto model = LlmConfig::llm7b(true);
    auto cluster = ClusterConfig::neupimsLike(model);
    cluster.plan = ParallelPlan{cluster.nModules / 2, 2};
    applyOptions(cluster, PimphonyOptions::all());

    std::vector<Request> reqs;
    for (RequestId i = 0; i < 32; ++i)
        reqs.push_back({i, 30000, 64});
    RequestClass interactive;
    interactive.tier = 0;
    interactive.gapSloSeconds = 0.05;
    RequestClass batch;
    batch.tier = 1;
    batch.gapSloSeconds = 0.5;
    assignRequestClassesRoundRobin(reqs, {interactive, batch});

    OnOffTraffic traffic;
    traffic.onRate = 4.0;
    traffic.offRate = 0.0;
    traffic.meanOnSeconds = 2.0;
    traffic.meanOffSeconds = 4.0;
    auto timed = onOffArrivals(reqs, traffic, 17);

    SchedPolicyConfig sched;
    sched.kind = SchedPolicyKind::TierPriority;
    auto tiers = runEngine(cluster, model, timed, 2048, sched);

    // The single-class reference: same trace, default classes, FIFO.
    std::vector<Request> plain = reqs;
    assignRequestClass(plain, RequestClass{});
    auto plain_timed = onOffArrivals(plain, traffic, 17);
    sched.kind = SchedPolicyKind::Fifo;
    auto fifo = runEngine(cluster, model, plain_timed, 2048, sched);

    ASSERT_EQ(tiers.completedRequests, 32u);
    ASSERT_EQ(fifo.completedRequests, 32u);
    ASSERT_EQ(tiers.classLatencies.size(), 2u);
    const auto &t0 = tierRow(tiers, 0);
    const auto &t1 = tierRow(tiers, 1);
    EXPECT_EQ(t0.requests, 16u);
    EXPECT_EQ(t1.requests, 16u);
    EXPECT_EQ(t0.completedRequests, 16u);
    EXPECT_DOUBLE_EQ(t0.gapSloTargetSeconds, 0.05);

    // Acceptance (a): tier-0's decode tail is no worse than tier-1's
    // and no worse than the single-class FIFO run's.
    ASSERT_GT(t0.p95TokenGapSeconds, 0.0);
    ASSERT_GT(t1.p95TokenGapSeconds, 0.0);
    EXPECT_LE(t0.p95TokenGapSeconds, t1.p95TokenGapSeconds);
    EXPECT_LE(t0.p95TokenGapSeconds, fifo.p95TokenGapSeconds);

    // The single-class run reports no per-class rows.
    EXPECT_TRUE(fifo.classLatencies.empty());

    // Prefill charge conservation: the tier policy relocates chunks
    // and decode slices in time but loses none of the charge.
    double expected = tiers.prefillSeconds *
                      static_cast<double>(cluster.prefillEngines()) /
                      cluster.plan.tp;
    ASSERT_GT(expected, 0.0);
    EXPECT_NEAR(tiers.xpuPrefillBusySeconds / expected, 1.0, 0.01);
    EXPECT_NEAR(tiers.prefillSeconds, fifo.prefillSeconds,
                1e-9 * fifo.prefillSeconds);
}

// --- Per-class SLO admission. ------------------------------------------

TEST(SloClassesEngine, PerClassGateKeepsGuardedTierUnderItsTarget)
{
    auto model = LlmConfig::llm7b(true);
    auto cluster = ClusterConfig::neupimsLike(model);
    applyOptions(cluster, PimphonyOptions::all());

    // A warm tier-0 decoder plus bursts of tier-1 long-context
    // prefills that would clobber its token gaps (the per-class
    // variant of the SloAdmission scenario in sched_policy_test).
    RequestClass interactive;
    interactive.tier = 0;
    interactive.gapSloSeconds = 0.07;
    RequestClass batch;
    batch.tier = 1;
    batch.gapSloSeconds = 10.0; // effectively ungated on its own tier

    std::vector<TimedRequest> timed;
    timed.push_back({{0, 30000, 1536, interactive}, 0.0});
    RequestId id = 1;
    for (int burst = 0; burst < 2; ++burst)
        for (int i = 0; i < 8; ++i)
            timed.push_back({{id++, 30000, 64, batch},
                             3.0 + 7.0 * burst + 0.25 * i});

    SchedPolicyConfig sched;
    sched.kind = SchedPolicyKind::SloAdmission;
    sched.sloWindow = 32;
    auto slo = runEngine(cluster, model, timed, 512, sched);

    sched.kind = SchedPolicyKind::Fifo;
    auto fifo = runEngine(cluster, model, timed, 512, sched);

    ASSERT_EQ(slo.completedRequests, 17u);
    ASSERT_EQ(fifo.completedRequests, 17u);
    ASSERT_GT(slo.sloDeferrals, 0u);

    // Tier 0 is judged on its own window against its own target;
    // gated admission keeps its decode tail under that target while
    // FIFO blows through it.
    const auto &slo_t0 = tierRow(slo, 0);
    const auto &fifo_t0 = tierRow(fifo, 0);
    EXPECT_LE(slo_t0.p95TokenGapSeconds, interactive.gapSloSeconds);
    EXPECT_GT(fifo_t0.p95TokenGapSeconds, interactive.gapSloSeconds);
}

// --- (c) Per-tenant budgets. --------------------------------------------

std::vector<TimedRequest>
tenantMix(std::size_t per_tenant, Tokens ctx, Tokens decode,
          bool tenant_b_active)
{
    // Tenant 0 saturates from t=0; tenant 1 (when active) demands the
    // same workload. Tenant 0's requests sort first at equal arrival
    // times, so without budgets it hogs the queue head.
    std::vector<TimedRequest> timed;
    RequestClass a;
    a.tenant = 0;
    RequestClass b;
    b.tenant = 1;
    RequestId id = 0;
    for (std::size_t i = 0; i < per_tenant; ++i)
        timed.push_back({{id++, ctx, decode, a}, 0.0});
    if (tenant_b_active)
        for (std::size_t i = 0; i < per_tenant; ++i)
            timed.push_back({{id++, ctx, decode, b}, 0.0});
    return timed;
}

TEST(SloClassesEngine, BudgetGuaranteesActiveTenantItsShare)
{
    auto model = LlmConfig::llm7b(true);
    auto cluster = ClusterConfig::neupimsLike(model);
    applyOptions(cluster, PimphonyOptions::all());

    auto timed = tenantMix(48, 30000, 256, true);
    SchedPolicyConfig sched;
    std::vector<TenantBudget> budgets = {{0, 0.5}, {1, 0.5}};

    auto with = runEngine(cluster, model, timed, 0, sched, budgets);
    auto without = runEngine(cluster, model, timed, 0, sched);

    ASSERT_EQ(with.completedRequests, 96u);
    ASSERT_EQ(without.completedRequests, 96u);

    // Without budgets the head-of-queue tenant hogs admission; with
    // budgets the saturating tenant cannot hold tenant 1 below its
    // guaranteed share while tenant 1 has entitled demand waiting.
    const auto &b_with = tenantRow(with, 1);
    ASSERT_EQ(with.tenantOccupancy.size(), 2u);
    EXPECT_DOUBLE_EQ(b_with.budgetShare, 0.5);
    EXPECT_GT(b_with.admittedRequests, 0u);
    // Tenant 1's peak occupancy reaches (at least close to) its
    // budget, and its time-averaged share is a healthy fraction of
    // it — it can no longer be starved behind tenant 0's backlog.
    EXPECT_GE(b_with.peakTokenShare, 0.40);
    EXPECT_GE(b_with.avgTokenShare, 0.25);
    // The comparison that matters: without budgets tenant 1 waits
    // behind tenant 0's whole backlog (the time-averaged share over
    // the full run hides this — each tenant dominates its own
    // phase); with budgets tenant 1 is admitted from the start, so
    // its mean time-to-first-token collapses and the inter-tenant
    // TTFT gap closes.
    auto meanTtft = [](const EngineResult &r, RequestId lo,
                       RequestId hi) {
        double sum = 0.0;
        int n = 0;
        for (const auto &kv : r.firstTokenLatency)
            if (kv.first >= lo && kv.first < hi) {
                sum += kv.second;
                ++n;
            }
        return n ? sum / n : 0.0;
    };
    double b_ttft_with = meanTtft(with, 48, 96);
    double b_ttft_without = meanTtft(without, 48, 96);
    ASSERT_GT(b_ttft_without, 0.0);
    EXPECT_LT(b_ttft_with, 0.8 * b_ttft_without);
    double gap_with =
        std::abs(meanTtft(with, 0, 48) - b_ttft_with);
    double gap_without =
        std::abs(meanTtft(without, 0, 48) - b_ttft_without);
    EXPECT_LT(gap_with, 0.5 * gap_without);
    // Without budgets the starved tenant eventually hogs the whole
    // capacity once tenant 0 drains (peak ~1.0); the budget holds
    // its peak near the guarantee.
    const auto &b_without = tenantRow(without, 1);
    EXPECT_DOUBLE_EQ(b_without.budgetShare, 0.0);
    EXPECT_GT(b_without.peakTokenShare, b_with.peakTokenShare);
    EXPECT_GT(with.budgetDeferrals, 0u);

    // The metrics the sweep reports exist for both tenants.
    const auto &a_with = tenantRow(with, 0);
    EXPECT_GT(a_with.admittedRequests, 0u);
}

TEST(SloClassesEngine, IdleTenantShareIsBorrowable)
{
    auto model = LlmConfig::llm7b(true);
    auto cluster = ClusterConfig::neupimsLike(model);
    applyOptions(cluster, PimphonyOptions::all());

    // Tenant 1 idle: tenant 0 holds only a 0.3 guarantee but may
    // borrow the idle headroom — work conservation means its peak
    // share exceeds its budget and throughput matches the
    // budget-free run exactly.
    auto timed = tenantMix(48, 30000, 256, false);
    SchedPolicyConfig sched;
    std::vector<TenantBudget> budgets = {{0, 0.3}, {1, 0.7}};

    auto with = runEngine(cluster, model, timed, 0, sched, budgets);
    auto without = runEngine(cluster, model, timed, 0, sched);

    ASSERT_EQ(with.completedRequests, 48u);
    const auto &a = tenantRow(with, 0);
    EXPECT_GT(a.peakTokenShare, 0.3);
    // Work conserving: borrowing makes the budgeted run exactly as
    // fast as the unbudgeted one.
    EXPECT_DOUBLE_EQ(with.tokensPerSecond, without.tokensPerSecond);
    EXPECT_DOUBLE_EQ(with.simulatedSeconds, without.simulatedSeconds);
    const auto &b = tenantRow(with, 1);
    EXPECT_EQ(b.admittedRequests, 0u);
    EXPECT_DOUBLE_EQ(b.avgTokenShare, 0.0);
}

// --- (d) Strict additivity of the subsystem. ----------------------------

TEST(SloClassesEngine, DefaultClassNoBudgetsIsBitIdentical)
{
    auto model = LlmConfig::llm7b(true);
    auto cluster = ClusterConfig::neupimsLike(model);
    cluster.plan = ParallelPlan{cluster.nModules / 4, 4};
    applyOptions(cluster, PimphonyOptions::all());

    std::vector<Request> reqs;
    for (RequestId i = 0; i < 64; ++i)
        reqs.push_back({i, (i % 4 == 0) ? Tokens(30000) : Tokens(2000),
                        24});
    auto timed = gammaArrivals(reqs, 4.0, 3.0, 17);

    // Explicitly stamping the default class must change nothing: the
    // subsystem is strictly additive (the PR 4 goldens pinned in
    // engine_determinism_test check the same runs against recorded
    // history).
    auto stamped = timed;
    for (auto &t : stamped)
        t.request.cls = RequestClass{};

    for (SchedPolicyKind kind :
         {SchedPolicyKind::Fifo, SchedPolicyKind::ChunkPreempt,
          SchedPolicyKind::SloAdmission}) {
        SchedPolicyConfig sched;
        sched.kind = kind;
        auto a = runEngine(cluster, model, timed, 2048, sched);
        auto b = runEngine(cluster, model, stamped, 2048, sched);

        EXPECT_EQ(a.tokensPerSecond, b.tokensPerSecond);
        EXPECT_EQ(a.simulatedSeconds, b.simulatedSeconds);
        EXPECT_EQ(a.generatedTokens, b.generatedTokens);
        EXPECT_EQ(a.completedRequests, b.completedRequests);
        EXPECT_EQ(a.avgEffectiveBatch, b.avgEffectiveBatch);
        EXPECT_EQ(a.macUtilization, b.macUtilization);
        EXPECT_EQ(a.capacityUtilization, b.capacityUtilization);
        EXPECT_EQ(a.attentionSeconds, b.attentionSeconds);
        EXPECT_EQ(a.fcSeconds, b.fcSeconds);
        EXPECT_EQ(a.prefillSeconds, b.prefillSeconds);
        EXPECT_EQ(a.avgRequestLatency, b.avgRequestLatency);
        EXPECT_EQ(a.p95RequestLatency, b.p95RequestLatency);
        EXPECT_EQ(a.avgFirstTokenSeconds, b.avgFirstTokenSeconds);
        EXPECT_EQ(a.p95FirstTokenSeconds, b.p95FirstTokenSeconds);
        EXPECT_EQ(a.avgTokenGapSeconds, b.avgTokenGapSeconds);
        EXPECT_EQ(a.p95TokenGapSeconds, b.p95TokenGapSeconds);
        EXPECT_EQ(a.sloDeferrals, b.sloDeferrals);
        EXPECT_EQ(a.chunkSlices, b.chunkSlices);
        EXPECT_EQ(a.decodeOvertakes, b.decodeOvertakes);
        EXPECT_EQ(a.maxDecodeXpuWaitSeconds, b.maxDecodeXpuWaitSeconds);
        EXPECT_EQ(a.xpuPrefillBusySeconds, b.xpuPrefillBusySeconds);
        EXPECT_EQ(a.simEvents, b.simEvents);
        EXPECT_EQ(a.preemptions, b.preemptions);
        EXPECT_EQ(a.rejectedRequests, b.rejectedRequests);

        // The additive surface stays empty and quiet.
        EXPECT_TRUE(a.classLatencies.empty());
        EXPECT_TRUE(a.tenantOccupancy.empty());
        EXPECT_EQ(a.tierInversions, 0u);
        EXPECT_EQ(a.decodePreemptSlices, 0u);
        EXPECT_EQ(a.budgetDeferrals, 0u);
    }
}

// --- Orchestrator wiring. ------------------------------------------------

TEST(SloClassesEngine, TierPolicyAndBudgetsSelectableViaOrchestrator)
{
    OrchestratorConfig cfg;
    cfg.system = SystemKind::XpuPim;
    cfg.model = LlmConfig::llm7b(true);
    cfg.options = PimphonyOptions::all();
    cfg.plan = ParallelPlan{2, 2};
    cfg.prefillChunkTokens = 2048;
    cfg.sched.kind = SchedPolicyKind::TierPriority;
    cfg.tenantBudgets = {{0, 0.5}, {1, 0.5}};
    cfg.nRequests = 6;
    cfg.decodeTokens = 8;
    PimphonyOrchestrator orch(cfg);
    auto r = orch.evaluate(TraceTask::MultifieldQa);
    EXPECT_EQ(r.engine.completedRequests, 6u);
    EXPECT_GT(r.engine.tokensPerSecond, 0.0);
    // Budgets imply tenant occupancy rows even for one tenant.
    EXPECT_FALSE(r.engine.tenantOccupancy.empty());
}

} // namespace
} // namespace pimphony
