/**
 * @file
 * System-level tests: module phase models, cluster presets, the
 * serving engine's conservation and improvement properties, and the
 * GPU baseline.
 */

#include <gtest/gtest.h>

#include "system/engine.hh"
#include "system/gpu_system.hh"
#include "workload/trace.hh"

namespace pimphony {
namespace {

std::vector<Request>
fixedRequests(std::initializer_list<Tokens> contexts, Tokens decode = 32)
{
    std::vector<Request> out;
    RequestId id = 0;
    for (Tokens c : contexts)
        out.push_back({id++, c, decode});
    return out;
}

TEST(Xpu, RooflineBehaviour)
{
    XpuModel npu(XpuConfig::neupimsNpu());
    // Tiny batch: memory-bound on the weight stream.
    double small = npu.gemmSeconds(2e9, 1_GiB, 1);
    EXPECT_NEAR(small, 1_GiB / 1e12, small * 0.5);
    // Larger batch same weights: more FLOPs, but amortized weights;
    // per-request time shrinks.
    double large = npu.gemmSeconds(2e9 * 64, 1_GiB, 64);
    EXPECT_LT(large / 64.0, small);
}

TEST(Module, TcpBeatsHfpOnImbalancedJobs)
{
    PimModuleConfig cfg;
    cfg.scheduler = SchedulerKind::Static;
    auto model = LlmConfig::llm7b(false);

    std::vector<AttentionJob> jobs;
    jobs.push_back({0, 0, 30000});
    for (RequestId r = 1; r < 4; ++r)
        jobs.push_back({r, 0, 3000});

    cfg.partitioning = Partitioning::Hfp;
    PimModuleModel hfp(cfg);
    cfg.partitioning = Partitioning::Tcp;
    PimModuleModel tcp(cfg);

    auto a = hfp.attentionLayer(jobs, model);
    auto b = tcp.attentionLayer(jobs, model);
    EXPECT_LT(b.seconds, a.seconds);
    // TCP's busy cycles are spread over all channels.
    double hfp_util = a.busyChannelCycles / a.spanChannelCycles;
    double tcp_util = b.busyChannelCycles / b.spanChannelCycles;
    EXPECT_GT(tcp_util, hfp_util);
}

TEST(Module, DcsShrinksAttentionTime)
{
    auto model = LlmConfig::llm7b(true);
    std::vector<AttentionJob> jobs;
    for (RequestId r = 0; r < 8; ++r)
        jobs.push_back({r, 0, 32768});

    PimModuleConfig cfg;
    cfg.partitioning = Partitioning::Tcp;
    cfg.scheduler = SchedulerKind::Static;
    PimModuleModel st(cfg);
    cfg.scheduler = SchedulerKind::Dcs;
    cfg.timing.outputEntries = 16;
    PimModuleModel dc(cfg);

    auto a = st.attentionLayer(jobs, model);
    auto b = dc.attentionLayer(jobs, model);
    EXPECT_LT(b.seconds, a.seconds);
}

TEST(Module, FcLayerScalesWithBatch)
{
    PimModuleConfig cfg;
    PimModuleModel m(cfg);
    auto model = LlmConfig::llm7b(false);
    auto b1 = m.fcLayer(1, model, 8);
    auto b4 = m.fcLayer(4, model, 8);
    EXPECT_NEAR(b4.seconds, 4.0 * b1.seconds, b1.seconds * 0.01);
}

TEST(Cluster, PresetsMatchEvaluationSection)
{
    auto m7 = LlmConfig::llm7b(false);
    auto cent = ClusterConfig::centLike(m7);
    EXPECT_EQ(cent.nModules, 8u);
    EXPECT_EQ(cent.totalCapacity(), 128_GiB);
    EXPECT_EQ(cent.module.nChannels, 32u);

    auto m72 = LlmConfig::llm72b(false);
    auto cent72 = ClusterConfig::centLike(m72);
    EXPECT_EQ(cent72.nModules, 32u);
    EXPECT_EQ(cent72.totalCapacity(), 512_GiB);

    auto neu = ClusterConfig::neupimsLike(m7);
    EXPECT_EQ(neu.nModules, 4u);
    EXPECT_EQ(neu.totalCapacity(), 128_GiB);
    auto neu72 = ClusterConfig::neupimsLike(m72);
    EXPECT_EQ(neu72.nModules, 16u);
    EXPECT_EQ(neu72.totalCapacity(), 512_GiB);
}

TEST(Cluster, OptionsDriveConfig)
{
    auto cfg = ClusterConfig::centLike(LlmConfig::llm7b(false));
    applyOptions(cfg, PimphonyOptions::baseline());
    EXPECT_EQ(cfg.module.partitioning, Partitioning::Hfp);
    EXPECT_EQ(cfg.module.scheduler, SchedulerKind::Static);
    EXPECT_EQ(cfg.module.timing.outputEntries, 1u);
    applyOptions(cfg, PimphonyOptions::all());
    EXPECT_EQ(cfg.module.partitioning, Partitioning::Tcp);
    EXPECT_EQ(cfg.module.scheduler, SchedulerKind::Dcs);
    EXPECT_EQ(cfg.module.timing.outputEntries, 16u);
    EXPECT_EQ(PimphonyOptions::all().label(), "+TCP+DCS+DPA");
}

TEST(Engine, TokenConservation)
{
    auto model = LlmConfig::llm7b(true);
    auto cluster = ClusterConfig::centLike(model);
    auto requests = fixedRequests({20000, 40000, 60000}, 16);
    auto r = runServing(cluster, model, requests,
                        PimphonyOptions::all());
    EXPECT_EQ(r.generatedTokens, 3u * 16u);
    EXPECT_EQ(r.completedRequests, 3u);
    EXPECT_EQ(r.rejectedRequests, 0u);
    EXPECT_GT(r.simulatedSeconds, 0.0);
    EXPECT_GT(r.tokensPerSecond, 0.0);
}

TEST(Engine, RejectsImpossibleRequests)
{
    auto model = LlmConfig::llm7b(false); // CW 32K
    auto cluster = ClusterConfig::centLike(model);
    auto requests = fixedRequests({40000}, 16); // beyond CW
    auto r = runServing(cluster, model, requests,
                        PimphonyOptions::baseline());
    EXPECT_EQ(r.completedRequests, 0u);
    EXPECT_EQ(r.rejectedRequests, 1u);
}

// --- Rejection accounting: the three sites in engine.cc. ---------------

TEST(Engine, RejectsRequestBeyondKvCapacityBothStepModels)
{
    // Site 1, capacity arm: the full decode trajectory exceeds the
    // KV capacity of a deliberately tiny cluster while staying
    // inside the context window, so admission rejects it outright.
    auto model = LlmConfig::llm7b(true);
    auto cluster = ClusterConfig::centLike(model);
    cluster.nModules = 1;
    cluster.plan = ParallelPlan{1, 1};
    Tokens cap = cluster.usableKvBytes(model) / model.kvBytesPerToken();
    ASSERT_LT(cap + 1016, model.contextWindow);

    std::vector<Request> requests = {{0, cap + 1000, 16},
                                     {1, 2000, 16}};
    for (StepModel sm : {StepModel::Analytic, StepModel::EventDriven}) {
        EngineOptions opts;
        opts.allocator = AllocatorKind::LazyChunk;
        opts.stepModel = sm;
        auto r = ServingEngine(cluster, model, requests, opts).run();
        EXPECT_EQ(r.rejectedRequests, 1u) << stepModelName(sm);
        EXPECT_EQ(r.completedRequests, 1u) << stepModelName(sm);
    }
}

/**
 * Two-tenant construction reaching the forward-progress rejection
 * sites: tenant 1 holds a large entitlement but its request exceeds
 * the context window (site 1), which leaves tenant 0's over-budget
 * request un-admittable — borrowing is denied while tenant 1 looks
 * entitled — with nothing running. The analytic loop's reject-front
 * arm and the event-driven cohort former's deadlock guard must then
 * reject it rather than spin.
 */
TEST(Engine, RejectFrontAndDeadlockGuardFireWhenNothingAdmissible)
{
    auto model = LlmConfig::llm7b(false); // 32K context window
    auto cluster = ClusterConfig::centLike(model);
    Tokens cap = cluster.usableKvBytes(model) / model.kvBytesPerToken();
    // Tenant 1's entitlement (0.95 cap) must cover its 40016-token
    // request or the construction collapses.
    ASSERT_GT(cap, 45000u);

    RequestClass starved;
    starved.tenant = 0;
    RequestClass entitled;
    entitled.tenant = 1;
    std::vector<TimedRequest> timed = {
        {Request(0, 2000, 16, starved), 0.0},
        {Request(1, 40000, 16, entitled), 0.0},
    };
    for (StepModel sm : {StepModel::Analytic, StepModel::EventDriven}) {
        EngineOptions opts;
        opts.allocator = AllocatorKind::LazyChunk;
        opts.stepModel = sm;
        if (sm == StepModel::EventDriven)
            opts.prefillChunkTokens = 2048;
        opts.tenantBudgets = {{0, 0.001}, {1, 0.95}};
        auto r = ServingEngine(cluster, model, timed, opts).run();
        EXPECT_EQ(r.rejectedRequests, 2u) << stepModelName(sm);
        EXPECT_EQ(r.completedRequests, 0u) << stepModelName(sm);
        EXPECT_GT(r.budgetDeferrals, 0u) << stepModelName(sm);
    }
}

TEST(Engine, TechniqueOrderingOnLongContext)
{
    // The paper's central result in miniature: every added technique
    // helps on a long-context trace.
    auto model = LlmConfig::llm7b(true);
    auto cluster = ClusterConfig::centLike(model);
    TraceGenerator gen(TraceTask::MultifieldQa, 21);
    auto requests = gen.generate(16, 32);

    auto base = runServing(cluster, model, requests,
                           PimphonyOptions::baseline());
    auto tcp = runServing(cluster, model, requests,
                          PimphonyOptions{true, false, false});
    auto dcs = runServing(cluster, model, requests,
                          PimphonyOptions{true, true, false});
    auto all = runServing(cluster, model, requests,
                          PimphonyOptions::all());

    EXPECT_GT(tcp.tokensPerSecond, base.tokensPerSecond);
    EXPECT_GT(dcs.tokensPerSecond, tcp.tokensPerSecond);
    EXPECT_GE(all.tokensPerSecond, dcs.tokensPerSecond * 0.95);
    // Cumulative speedup in the paper's reported band (>2x).
    EXPECT_GT(all.tokensPerSecond / base.tokensPerSecond, 2.0);
}

TEST(Engine, DpaLiftsCapacityUtilizationAndBatch)
{
    auto model = LlmConfig::llm7b(true);
    auto cluster = ClusterConfig::centLike(model);
    TraceGenerator gen(TraceTask::MultifieldQa, 5);
    auto requests = gen.generate(24, 32);

    auto without = runServing(cluster, model, requests,
                              PimphonyOptions{true, true, false});
    auto with = runServing(cluster, model, requests,
                           PimphonyOptions::all());
    EXPECT_GT(with.capacityUtilization, without.capacityUtilization);
    EXPECT_GT(with.avgEffectiveBatch, without.avgEffectiveBatch);
}

TEST(Engine, UtilizationDropsWithContextOnBaseline)
{
    // Fig. 4(a): the baseline loses MAC utilization as contexts grow.
    auto model = LlmConfig::llm7b(true);
    auto cluster = ClusterConfig::centLike(model);
    TraceGenerator gen(TraceTask::QMSum, 9);

    auto short_reqs = gen.generateScaled(16, 4096, 16);
    auto long_reqs = gen.generateScaled(16, 32768, 16);
    auto s = runServing(cluster, model, short_reqs,
                        PimphonyOptions::baseline());
    auto l = runServing(cluster, model, long_reqs,
                        PimphonyOptions::baseline());
    EXPECT_LT(l.macUtilization, s.macUtilization);
}

TEST(Engine, XpuPimOverlapsFcAndAttention)
{
    auto model = LlmConfig::llm7b(true);
    auto cluster = ClusterConfig::neupimsLike(model);
    TraceGenerator gen(TraceTask::MultifieldQa, 13);
    auto requests = gen.generate(8, 16);
    auto r = runServing(cluster, model, requests,
                        PimphonyOptions::all());
    EXPECT_GT(r.tokensPerSecond, 0.0);
    EXPECT_EQ(r.completedRequests, 8u);
}

TEST(Gpu, ServesAndCompletes)
{
    GpuSystemConfig cfg;
    cfg.nGpus = 2;
    auto model = LlmConfig::llm7b(true);
    auto requests = fixedRequests({30000, 50000, 70000}, 16);
    auto r = runGpuServing(cfg, model, requests);
    EXPECT_EQ(r.generatedTokens, 3u * 16u);
    EXPECT_GT(r.tokensPerSecond, 0.0);
}

TEST(Gpu, ThroughputDropsWithContext)
{
    GpuSystemConfig cfg;
    cfg.nGpus = 2;
    auto model = LlmConfig::llm7b(true);
    auto short_r = runGpuServing(cfg, model, fixedRequests({8000}, 16));
    auto long_r = runGpuServing(cfg, model, fixedRequests({80000}, 16));
    EXPECT_GT(short_r.tokensPerSecond, long_r.tokensPerSecond);
}

} // namespace
} // namespace pimphony
