/**
 * @file
 * Workload tests: the synthetic traces must reproduce Table II's
 * statistics and honour bounds; generation is deterministic per
 * seed. The bursty open-loop arrival generators (gamma, on/off) must
 * likewise be deterministic per seed and hit their configured
 * long-run mean rate.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <random>

#include "common/stats.hh"
#include "workload/arrival.hh"
#include "workload/arrival_process.hh"
#include "workload/replay.hh"
#include "workload/spec.hh"
#include "workload/trace.hh"

namespace pimphony {
namespace {

class TraceMoments : public ::testing::TestWithParam<TraceTask>
{
};

TEST_P(TraceMoments, MatchTableII)
{
    TraceTask task = GetParam();
    const auto &ref = traceTaskStats(task);
    TraceGenerator gen(task, 7);
    auto reqs = gen.generate(20000);

    StatAccumulator s;
    for (const auto &r : reqs) {
        ASSERT_GE(static_cast<double>(r.contextTokens), ref.min);
        ASSERT_LE(static_cast<double>(r.contextTokens), ref.max);
        s.add(static_cast<double>(r.contextTokens));
    }
    // Truncation shifts moments slightly; 12% on the mean, 25% on
    // the standard deviation keeps the distribution recognizably
    // Table II.
    EXPECT_NEAR(s.mean(), ref.mean, ref.mean * 0.12) << ref.name;
    EXPECT_NEAR(s.stddev(), ref.stddev, ref.stddev * 0.25) << ref.name;
}

INSTANTIATE_TEST_SUITE_P(AllTasks, TraceMoments,
                         ::testing::ValuesIn(allTraceTasks()));

TEST(Trace, DeterministicPerSeed)
{
    TraceGenerator a(TraceTask::QMSum, 11), b(TraceTask::QMSum, 11);
    auto ra = a.generate(64), rb = b.generate(64);
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t i = 0; i < ra.size(); ++i)
        EXPECT_EQ(ra[i].contextTokens, rb[i].contextTokens);
}

TEST(Trace, DifferentSeedsDiffer)
{
    TraceGenerator a(TraceTask::QMSum, 1), b(TraceTask::QMSum, 2);
    auto ra = a.generate(64), rb = b.generate(64);
    int same = 0;
    for (std::size_t i = 0; i < ra.size(); ++i)
        if (ra[i].contextTokens == rb[i].contextTokens)
            ++same;
    EXPECT_LT(same, 8);
}

TEST(Trace, IdsAreUniqueAcrossBatches)
{
    TraceGenerator gen(TraceTask::Musique, 3);
    auto a = gen.generate(10);
    auto b = gen.generate(10);
    EXPECT_EQ(a.back().id + 1, b.front().id);
}

TEST(Trace, ScaledGenerationHitsTargetMean)
{
    TraceGenerator gen(TraceTask::MultifieldQa, 5);
    auto reqs = gen.generateScaled(5000, 262144);
    StatAccumulator s;
    for (const auto &r : reqs)
        s.add(static_cast<double>(r.contextTokens));
    EXPECT_NEAR(s.mean(), 262144.0, 262144.0 * 0.12);
}

TEST(Trace, DecodeTokensPropagated)
{
    TraceGenerator gen(TraceTask::LoogleSd, 9);
    auto reqs = gen.generate(5, 77);
    for (const auto &r : reqs)
        EXPECT_EQ(r.decodeTokens, 77u);
}

// --- Bursty arrival generators. ----------------------------------------

std::vector<Request>
flatRequests(std::size_t n)
{
    std::vector<Request> reqs;
    for (RequestId i = 0; i < n; ++i)
        reqs.push_back({i, 1000, 16});
    return reqs;
}

void
expectSameArrivals(const std::vector<TimedRequest> &a,
                   const std::vector<TimedRequest> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].request.id, b[i].request.id) << i;
        EXPECT_EQ(a[i].arrivalSeconds, b[i].arrivalSeconds) << i;
    }
}

TEST(Arrivals, GammaDeterministicPerSeedAndSeedsDiffer)
{
    auto reqs = flatRequests(256);
    auto a = gammaArrivals(reqs, 5.0, 3.0, 11);
    auto b = gammaArrivals(reqs, 5.0, 3.0, 11);
    expectSameArrivals(a, b);

    auto c = gammaArrivals(reqs, 5.0, 3.0, 12);
    ASSERT_EQ(a.size(), c.size());
    int same = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (a[i].arrivalSeconds == c[i].arrivalSeconds)
            ++same;
    EXPECT_LT(same, 4);
}

TEST(Arrivals, OnOffDeterministicPerSeedAndSeedsDiffer)
{
    auto reqs = flatRequests(256);
    OnOffTraffic traffic;
    traffic.onRate = 8.0;
    traffic.offRate = 0.5;
    traffic.meanOnSeconds = 1.5;
    traffic.meanOffSeconds = 3.0;
    auto a = onOffArrivals(reqs, traffic, 21);
    auto b = onOffArrivals(reqs, traffic, 21);
    expectSameArrivals(a, b);

    auto c = onOffArrivals(reqs, traffic, 22);
    int same = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (a[i].arrivalSeconds == c[i].arrivalSeconds)
            ++same;
    EXPECT_LT(same, 4);
}

TEST(Arrivals, GammaEmpiricalMeanRateMatchesConfigured)
{
    // Property: over many arrivals the empirical rate
    // n / t_last approaches the configured rate regardless of the
    // burstiness (CV); averaged over seeds to keep the tolerance
    // tight without flaking.
    auto reqs = flatRequests(4000);
    for (double cv : {0.5, 1.0, 3.0}) {
        double rate_sum = 0.0;
        const int kSeeds = 5;
        for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
            auto timed = gammaArrivals(reqs, 4.0, cv, seed);
            ASSERT_GT(timed.back().arrivalSeconds, 0.0);
            rate_sum += static_cast<double>(timed.size()) /
                        timed.back().arrivalSeconds;
        }
        EXPECT_NEAR(rate_sum / kSeeds, 4.0, 4.0 * 0.08) << "cv " << cv;
    }
}

TEST(Arrivals, OnOffEmpiricalMeanRateMatchesConfigured)
{
    auto reqs = flatRequests(4000);
    OnOffTraffic traffic;
    traffic.onRate = 10.0;
    traffic.offRate = 0.0;
    traffic.meanOnSeconds = 2.0;
    traffic.meanOffSeconds = 3.0;
    // Long-run rate = (on * t_on + off * t_off) / (t_on + t_off).
    double expected = (traffic.onRate * traffic.meanOnSeconds +
                       traffic.offRate * traffic.meanOffSeconds) /
                      (traffic.meanOnSeconds + traffic.meanOffSeconds);
    double rate_sum = 0.0;
    const int kSeeds = 5;
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
        auto timed = onOffArrivals(reqs, traffic, seed);
        ASSERT_GT(timed.back().arrivalSeconds, 0.0);
        rate_sum += static_cast<double>(timed.size()) /
                    timed.back().arrivalSeconds;
    }
    EXPECT_NEAR(rate_sum / kSeeds, expected, expected * 0.10);
}

// --- ArrivalProcess wrappers: the free functions must reproduce the
// --- pre-refactor RNG loops bit for bit. The goldens below are
// --- verbatim copies of the original generator bodies. ------------------

TEST(ArrivalProcess, PoissonWrapperMatchesLegacyLoop)
{
    auto reqs = flatRequests(128);
    const double rate = 3.0;
    const std::uint64_t seed = 19;
    std::vector<TimedRequest> golden;
    Rng rng(seed);
    double t = 0.0;
    for (const auto &r : reqs) {
        double u = rng.uniform();
        if (u <= 0.0)
            u = 1e-12;
        t += -std::log(u) / rate;
        golden.push_back({r, t});
    }
    expectSameArrivals(poissonArrivals(reqs, rate, seed), golden);
}

TEST(ArrivalProcess, GammaWrapperMatchesLegacyLoop)
{
    auto reqs = flatRequests(128);
    const double rate = 2.0, cv = 2.5;
    const std::uint64_t seed = 23;
    std::vector<TimedRequest> golden;
    Rng rng(seed);
    std::gamma_distribution<double> gap(1.0 / (cv * cv),
                                        cv * cv / rate);
    double t = 0.0;
    for (const auto &r : reqs) {
        t += gap(rng.engine());
        golden.push_back({r, t});
    }
    expectSameArrivals(gammaArrivals(reqs, rate, cv, seed), golden);
}

TEST(ArrivalProcess, OnOffWrapperMatchesLegacyLoop)
{
    auto reqs = flatRequests(128);
    OnOffTraffic traffic;
    traffic.onRate = 6.0;
    traffic.offRate = 0.5;
    traffic.meanOnSeconds = 1.0;
    traffic.meanOffSeconds = 2.0;
    const std::uint64_t seed = 29;
    std::vector<TimedRequest> golden;
    Rng rng(seed);
    auto exp_draw = [&rng](double mean) {
        double u = rng.uniform();
        if (u <= 0.0)
            u = 1e-12;
        return -std::log(u) * mean;
    };
    double t = 0.0;
    bool on = true;
    double state_end = exp_draw(traffic.meanOnSeconds);
    for (const auto &r : reqs) {
        for (;;) {
            double rate = on ? traffic.onRate : traffic.offRate;
            if (rate > 0.0) {
                double next_t = t + exp_draw(1.0 / rate);
                if (next_t <= state_end) {
                    t = next_t;
                    break;
                }
            }
            t = state_end;
            on = !on;
            state_end = t + exp_draw(on ? traffic.meanOnSeconds
                                        : traffic.meanOffSeconds);
        }
        golden.push_back({r, t});
    }
    expectSameArrivals(onOffArrivals(reqs, traffic, seed), golden);
}

TEST(ArrivalProcess, NextBeforeResetDies)
{
    PoissonProcess p(1.0);
    EXPECT_DEATH(p.next(), "before reset");
}

// --- Piecewise rate curves (diurnal profiles). --------------------------

TEST(RateCurve, EmpiricalLongRunRateMatchesMean)
{
    auto reqs = flatRequests(4000);
    RateCurve curve = RateCurve::fromRates({2.0, 0.5}, 5.0);
    double expected = curve.meanRate();
    ASSERT_DOUBLE_EQ(expected, 1.25);
    double rate_sum = 0.0;
    const int kSeeds = 5;
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
        PiecewiseRateCurve process(curve);
        auto timed = attachArrivals(reqs, process, seed);
        ASSERT_GT(timed.back().arrivalSeconds, 0.0);
        rate_sum += static_cast<double>(timed.size()) /
                    timed.back().arrivalSeconds;
    }
    EXPECT_NEAR(rate_sum / kSeeds, expected, expected * 0.08);
}

TEST(RateCurve, DeterministicPerSeedAndSeedsDiffer)
{
    auto reqs = flatRequests(256);
    RateCurve curve = RateCurve::fromRates({1.0, 3.0, 0.2}, 2.0);
    PiecewiseRateCurve p1(curve), p2(curve), p3(curve);
    auto a = attachArrivals(reqs, p1, 41);
    auto b = attachArrivals(reqs, p2, 41);
    expectSameArrivals(a, b);
    auto c = attachArrivals(reqs, p3, 42);
    int same = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (a[i].arrivalSeconds == c[i].arrivalSeconds)
            ++same;
    EXPECT_LT(same, 4);
}

TEST(RateCurve, ZeroRateSegmentsGetNoArrivals)
{
    // Repeating {4 req/s for 1 s, silence for 1 s}: every arrival's
    // position inside the 2 s cycle must land in the active half.
    auto reqs = flatRequests(512);
    RateCurve curve = RateCurve::fromRates({4.0, 0.0}, 1.0);
    PiecewiseRateCurve process(curve);
    auto timed = attachArrivals(reqs, process, 7);
    for (const auto &tr : timed) {
        double pos = std::fmod(tr.arrivalSeconds, 2.0);
        EXPECT_LE(pos, 1.0 + 1e-9) << tr.arrivalSeconds;
    }
}

TEST(RateCurve, NonRepeatTailExtendsForever)
{
    // Non-repeating {silent 5 s, 2 req/s}: nothing before 5 s, and
    // the last segment keeps producing arrivals past its end.
    auto reqs = flatRequests(64);
    RateCurve curve;
    curve.segments = {{5.0, 0.0}, {1.0, 2.0}};
    curve.repeat = false;
    PiecewiseRateCurve process(curve);
    auto timed = attachArrivals(reqs, process, 9);
    EXPECT_GE(timed.front().arrivalSeconds, 5.0);
    EXPECT_GT(timed.back().arrivalSeconds, 6.0);
}

TEST(RateCurve, InvalidCurvesDie)
{
    RateCurve all_zero = RateCurve::fromRates({0.0, 0.0}, 1.0);
    EXPECT_DEATH(PiecewiseRateCurve{all_zero}, "positive rate");
    RateCurve zero_tail = RateCurve::fromRates({1.0, 0.0}, 1.0);
    zero_tail.repeat = false;
    EXPECT_DEATH(PiecewiseRateCurve{zero_tail}, "positive");
}

// --- Length sources. ----------------------------------------------------

TEST(LengthHistogram, FromFileSamplesWeightedBins)
{
    const char *path = "LENGTH_HIST_TEST.tmp";
    {
        std::ofstream os(path);
        os << "# prompt decode [weight]\n"
           << "1000 16 3\n"
           << "4000 64 1\n";
    }
    LengthHistogram hist = LengthHistogram::fromFile(path);
    std::remove(path);
    Rng rng(5);
    std::size_t small = 0, large = 0;
    const std::size_t kDraws = 4000;
    for (std::size_t i = 0; i < kDraws; ++i) {
        LengthPair p = hist.sample(rng);
        if (p.promptTokens == 1000 && p.decodeTokens == 16)
            ++small;
        else if (p.promptTokens == 4000 && p.decodeTokens == 64)
            ++large;
        else
            FAIL() << "sample outside the histogram bins";
    }
    // 3:1 weights; binomial noise over 4000 draws stays well inside
    // +-5 percentage points.
    EXPECT_NEAR(static_cast<double>(small) / kDraws, 0.75, 0.05);
    EXPECT_GT(large, 0u);
}

TEST(LengthHistogram, FromFileErrorPathsNameFileAndLine)
{
    const char *path = "LENGTH_HIST_BAD_TEST.tmp";
    auto write = [&](const char *text) {
        std::ofstream os(path, std::ios::trunc);
        os << text;
    };
    // Truncated row: a prompt with no decode column.
    write("1000 16 2\n4000\n");
    EXPECT_DEATH(LengthHistogram::fromFile(path),
                 "LENGTH_HIST_BAD_TEST.tmp:2: expected");
    // Non-numeric where a number is required.
    write("1000 sixteen\n");
    EXPECT_DEATH(LengthHistogram::fromFile(path),
                 "LENGTH_HIST_BAD_TEST.tmp:1: expected");
    // Non-numeric weight column.
    write("1000 16 heavy\n");
    EXPECT_DEATH(LengthHistogram::fromFile(path),
                 "LENGTH_HIST_BAD_TEST.tmp:1: bad weight");
    // Comments-only file: opens fine but yields no bins.
    write("# nothing here\n\n");
    EXPECT_DEATH(LengthHistogram::fromFile(path), "has no bins");
    std::remove(path);
    EXPECT_DEATH(LengthHistogram::fromFile(path),
                 "cannot open length histogram");
}

// --- WorkloadSpec: bit-identity with the legacy composition. ------------

TEST(WorkloadSpec, TableTaskPoissonMatchesFreeFunctions)
{
    const std::uint64_t seed = 77;
    WorkloadSpec spec;
    spec.count = 96;
    spec.length.kind = LengthSourceKind::TableTask;
    spec.length.task = TraceTask::QMSum;
    spec.length.decodeTokens = 32;
    spec.arrival.kind = ArrivalKind::Poisson;
    spec.arrival.ratePerSecond = 2.0;
    BuiltWorkload built = buildWorkload(spec, seed);
    EXPECT_TRUE(built.sessions.empty());

    TraceGenerator gen(TraceTask::QMSum, workloadLengthSeed(seed));
    auto legacy = poissonArrivals(gen.generate(96, 32), 2.0,
                                  workloadArrivalSeed(seed));
    ASSERT_EQ(built.initial.size(), legacy.size());
    for (std::size_t i = 0; i < legacy.size(); ++i) {
        EXPECT_EQ(built.initial[i].request.id, legacy[i].request.id);
        EXPECT_EQ(built.initial[i].request.contextTokens,
                  legacy[i].request.contextTokens);
        EXPECT_EQ(built.initial[i].request.decodeTokens,
                  legacy[i].request.decodeTokens);
        EXPECT_EQ(built.initial[i].arrivalSeconds,
                  legacy[i].arrivalSeconds);
    }
}

TEST(WorkloadSpec, PairsGammaAndOnOffMatchFreeFunctions)
{
    const std::uint64_t seed = 101;
    std::vector<LengthPair> pairs = {{1000, 16}, {2000, 32}, {500, 8}};
    std::vector<Request> legacy_reqs;
    for (RequestId i = 0; i < 64; ++i) {
        const LengthPair &p = pairs[i % pairs.size()];
        legacy_reqs.push_back({i, p.promptTokens, p.decodeTokens});
    }

    WorkloadSpec spec;
    spec.count = 64;
    spec.length.kind = LengthSourceKind::Pairs;
    spec.length.pairs = pairs;
    spec.arrival.kind = ArrivalKind::Gamma;
    spec.arrival.ratePerSecond = 3.0;
    spec.arrival.cv = 2.0;
    expectSameArrivals(buildWorkload(spec, seed).initial,
                       gammaArrivals(legacy_reqs, 3.0, 2.0,
                                     workloadArrivalSeed(seed)));

    spec.arrival.kind = ArrivalKind::OnOff;
    spec.arrival.onOff.onRate = 5.0;
    spec.arrival.onOff.offRate = 0.0;
    spec.arrival.onOff.meanOnSeconds = 1.0;
    spec.arrival.onOff.meanOffSeconds = 2.0;
    expectSameArrivals(buildWorkload(spec, seed).initial,
                       onOffArrivals(legacy_reqs, spec.arrival.onOff,
                                     workloadArrivalSeed(seed)));
}

TEST(WorkloadSpec, ClassesAssignedCyclically)
{
    RequestClass a, b;
    a.tier = 0;
    a.tenant = 0;
    b.tier = 1;
    b.tenant = 1;
    WorkloadSpec spec;
    spec.count = 10;
    spec.length.kind = LengthSourceKind::Pairs;
    spec.length.pairs = {{1000, 16}};
    spec.arrival.kind = ArrivalKind::Immediate;
    spec.classes = {a, b};
    BuiltWorkload built = buildWorkload(spec, 1);
    ASSERT_EQ(built.initial.size(), 10u);
    for (const auto &tr : built.initial)
        EXPECT_TRUE(tr.request.cls ==
                    (tr.request.id % 2 == 0 ? a : b))
            << tr.request.id;
}

TEST(WorkloadSpec, SessionsGrowHistoryAndChainTurns)
{
    WorkloadSpec spec;
    spec.count = 4;
    spec.length.kind = LengthSourceKind::Pairs;
    spec.length.pairs = {{1000, 50}};
    spec.arrival.kind = ArrivalKind::Poisson;
    spec.arrival.ratePerSecond = 1.0;
    spec.session.turns = 3;
    spec.session.thinkMeanSeconds = 2.0;
    BuiltWorkload built = buildWorkload(spec, 13);

    // 4 sessions: one turn-0 arrival each, two successors each.
    ASSERT_EQ(built.initial.size(), 4u);
    ASSERT_EQ(built.sessions.size(), 8u);
    for (const auto &tr : built.initial) {
        EXPECT_EQ(tr.request.turn, 0u);
        EXPECT_NE(tr.request.session, kNoSession);
        EXPECT_EQ(tr.request.contextTokens, 1000u);
    }
    // Turn k's context carries the history: 1000, 2050, 3100.
    for (const auto &kv : built.sessions) {
        const Request &r = kv.second.request;
        EXPECT_EQ(kv.first + 1, r.id);
        EXPECT_GE(kv.second.thinkSeconds, 0.0);
        if (r.turn == 1)
            EXPECT_EQ(r.contextTokens, 2050u);
        else if (r.turn == 2)
            EXPECT_EQ(r.contextTokens, 3100u);
        else
            FAIL() << "unexpected successor turn " << r.turn;
    }

    // Pure function of (spec, seed): a rebuild is identical.
    BuiltWorkload again = buildWorkload(spec, 13);
    expectSameArrivals(built.initial, again.initial);
    ASSERT_EQ(built.sessions.size(), again.sessions.size());
    for (const auto &kv : built.sessions) {
        auto it = again.sessions.find(kv.first);
        ASSERT_NE(it, again.sessions.end());
        EXPECT_EQ(kv.second.request.contextTokens,
                  it->second.request.contextTokens);
        EXPECT_EQ(kv.second.thinkSeconds, it->second.thinkSeconds);
    }
}

// --- Trace replay round trip. -------------------------------------------

TEST(Replay, SaveLoadRoundTripIsExact)
{
    RequestClass cls;
    cls.tier = 1;
    cls.gapSloSeconds = 0.25;
    cls.tenant = 3;
    WorkloadSpec spec;
    spec.count = 6;
    spec.length.kind = LengthSourceKind::TableTask;
    spec.length.task = TraceTask::Musique;
    spec.length.decodeTokens = 24;
    spec.arrival.kind = ArrivalKind::RateCurve;
    spec.arrival.curve = RateCurve::fromRates({1.0, 0.3}, 4.0);
    spec.classes = {RequestClass{}, cls};
    spec.session.turns = 3;
    spec.session.thinkMeanSeconds = 1.5;
    BuiltWorkload built = buildWorkload(spec, 55);

    const char *path = "REPLAY_ROUNDTRIP_TEST.tmp";
    saveWorkload(path, built);
    BuiltWorkload loaded = loadWorkload(path);
    std::remove(path);

    ASSERT_EQ(loaded.initial.size(), built.initial.size());
    for (std::size_t i = 0; i < built.initial.size(); ++i) {
        const TimedRequest &a = built.initial[i];
        const TimedRequest &b = loaded.initial[i];
        EXPECT_EQ(a.request.id, b.request.id);
        EXPECT_EQ(a.request.contextTokens, b.request.contextTokens);
        EXPECT_EQ(a.request.decodeTokens, b.request.decodeTokens);
        EXPECT_EQ(a.request.session, b.request.session);
        EXPECT_EQ(a.request.turn, b.request.turn);
        EXPECT_TRUE(a.request.cls == b.request.cls);
        EXPECT_EQ(a.arrivalSeconds, b.arrivalSeconds);
    }
    ASSERT_EQ(loaded.sessions.size(), built.sessions.size());
    for (const auto &kv : built.sessions) {
        auto it = loaded.sessions.find(kv.first);
        ASSERT_NE(it, loaded.sessions.end()) << kv.first;
        const Request &a = kv.second.request;
        const Request &b = it->second.request;
        EXPECT_EQ(a.id, b.id);
        EXPECT_EQ(a.contextTokens, b.contextTokens);
        EXPECT_EQ(a.decodeTokens, b.decodeTokens);
        EXPECT_EQ(a.session, b.session);
        EXPECT_EQ(a.turn, b.turn);
        EXPECT_TRUE(a.cls == b.cls);
        EXPECT_EQ(kv.second.thinkSeconds, it->second.thinkSeconds);
    }
}

TEST(Replay, LoadReportsFileLineColumnOnMalformedInput)
{
    const char *path = "REPLAY_BAD_TEST.tmp";
    auto write = [&](const char *text) {
        std::ofstream os(path, std::ios::binary | std::ios::trunc);
        os << text;
    };
    // Empty file: not even a top-level object.
    write("");
    EXPECT_DEATH(loadWorkload(path),
                 "REPLAY_BAD_TEST.tmp:1:1: bad trace file: "
                 "expected top-level object \\(at byte 0\\)");
    // Truncated mid-object: the file ends inside a request entry.
    write("{\"format\": \"pimphony-trace-v1\",\n"
          " \"requests\": [\n"
          "   {\"id\": 0, \"context\": 100,");
    EXPECT_DEATH(loadTrace(path),
                 "REPLAY_BAD_TEST.tmp:3:.*expected string");
    // Non-numeric field value.
    write("{\"format\": \"pimphony-trace-v1\",\n"
          " \"requests\": [{\"id\": x}]}");
    EXPECT_DEATH(loadTrace(path),
                 "REPLAY_BAD_TEST.tmp:2:.*expected number");
    std::remove(path);
    EXPECT_DEATH(loadTrace(path), "cannot open trace");
}

// --- Sorted-arrival guard. ----------------------------------------------

TEST(Arrivals, RequireSortedAcceptsSortedAndDiesOnUnsorted)
{
    auto reqs = flatRequests(16);
    auto timed = poissonArrivals(reqs, 2.0, 3);
    requireSortedByArrival(timed, "test");
    std::swap(timed.front().arrivalSeconds,
              timed.back().arrivalSeconds);
    EXPECT_DEATH(requireSortedByArrival(timed, "test"),
                 "arrivals out of order");
}

TEST(Arrivals, RequireSortedReportsIndexIdsAndTimestamps)
{
    // The failure message must identify the first out-of-order
    // position and both offending entries, so a bad hand-built
    // trace is diagnosable from the log line alone.
    std::vector<TimedRequest> timed = {{{7, 100, 8}, 2.0},
                                       {{3, 100, 8}, 1.0}};
    EXPECT_DEATH(requireSortedByArrival(timed, "ctx"),
                 "ctx: arrivals out of order at index 1 "
                 "\\(request 3 at 1 after request 7 at 2\\)");
}

TEST(Trace, NamesAndSuites)
{
    EXPECT_EQ(traceTaskName(TraceTask::QMSum), "QMSum");
    EXPECT_STREQ(traceTaskStats(TraceTask::QMSum).suite, "LongBench");
    EXPECT_STREQ(traceTaskStats(TraceTask::LoogleSd).suite, "LV-Eval");
    EXPECT_EQ(allTraceTasks().size(), 4u);
}

} // namespace
} // namespace pimphony
