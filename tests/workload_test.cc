/**
 * @file
 * Workload tests: the synthetic traces must reproduce Table II's
 * statistics and honour bounds; generation is deterministic per
 * seed. The bursty open-loop arrival generators (gamma, on/off) must
 * likewise be deterministic per seed and hit their configured
 * long-run mean rate.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "workload/arrival.hh"
#include "workload/trace.hh"

namespace pimphony {
namespace {

class TraceMoments : public ::testing::TestWithParam<TraceTask>
{
};

TEST_P(TraceMoments, MatchTableII)
{
    TraceTask task = GetParam();
    const auto &ref = traceTaskStats(task);
    TraceGenerator gen(task, 7);
    auto reqs = gen.generate(20000);

    StatAccumulator s;
    for (const auto &r : reqs) {
        ASSERT_GE(static_cast<double>(r.contextTokens), ref.min);
        ASSERT_LE(static_cast<double>(r.contextTokens), ref.max);
        s.add(static_cast<double>(r.contextTokens));
    }
    // Truncation shifts moments slightly; 12% on the mean, 25% on
    // the standard deviation keeps the distribution recognizably
    // Table II.
    EXPECT_NEAR(s.mean(), ref.mean, ref.mean * 0.12) << ref.name;
    EXPECT_NEAR(s.stddev(), ref.stddev, ref.stddev * 0.25) << ref.name;
}

INSTANTIATE_TEST_SUITE_P(AllTasks, TraceMoments,
                         ::testing::ValuesIn(allTraceTasks()));

TEST(Trace, DeterministicPerSeed)
{
    TraceGenerator a(TraceTask::QMSum, 11), b(TraceTask::QMSum, 11);
    auto ra = a.generate(64), rb = b.generate(64);
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t i = 0; i < ra.size(); ++i)
        EXPECT_EQ(ra[i].contextTokens, rb[i].contextTokens);
}

TEST(Trace, DifferentSeedsDiffer)
{
    TraceGenerator a(TraceTask::QMSum, 1), b(TraceTask::QMSum, 2);
    auto ra = a.generate(64), rb = b.generate(64);
    int same = 0;
    for (std::size_t i = 0; i < ra.size(); ++i)
        if (ra[i].contextTokens == rb[i].contextTokens)
            ++same;
    EXPECT_LT(same, 8);
}

TEST(Trace, IdsAreUniqueAcrossBatches)
{
    TraceGenerator gen(TraceTask::Musique, 3);
    auto a = gen.generate(10);
    auto b = gen.generate(10);
    EXPECT_EQ(a.back().id + 1, b.front().id);
}

TEST(Trace, ScaledGenerationHitsTargetMean)
{
    TraceGenerator gen(TraceTask::MultifieldQa, 5);
    auto reqs = gen.generateScaled(5000, 262144);
    StatAccumulator s;
    for (const auto &r : reqs)
        s.add(static_cast<double>(r.contextTokens));
    EXPECT_NEAR(s.mean(), 262144.0, 262144.0 * 0.12);
}

TEST(Trace, DecodeTokensPropagated)
{
    TraceGenerator gen(TraceTask::LoogleSd, 9);
    auto reqs = gen.generate(5, 77);
    for (const auto &r : reqs)
        EXPECT_EQ(r.decodeTokens, 77u);
}

// --- Bursty arrival generators. ----------------------------------------

std::vector<Request>
flatRequests(std::size_t n)
{
    std::vector<Request> reqs;
    for (RequestId i = 0; i < n; ++i)
        reqs.push_back({i, 1000, 16});
    return reqs;
}

void
expectSameArrivals(const std::vector<TimedRequest> &a,
                   const std::vector<TimedRequest> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].request.id, b[i].request.id) << i;
        EXPECT_EQ(a[i].arrivalSeconds, b[i].arrivalSeconds) << i;
    }
}

TEST(Arrivals, GammaDeterministicPerSeedAndSeedsDiffer)
{
    auto reqs = flatRequests(256);
    auto a = gammaArrivals(reqs, 5.0, 3.0, 11);
    auto b = gammaArrivals(reqs, 5.0, 3.0, 11);
    expectSameArrivals(a, b);

    auto c = gammaArrivals(reqs, 5.0, 3.0, 12);
    ASSERT_EQ(a.size(), c.size());
    int same = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (a[i].arrivalSeconds == c[i].arrivalSeconds)
            ++same;
    EXPECT_LT(same, 4);
}

TEST(Arrivals, OnOffDeterministicPerSeedAndSeedsDiffer)
{
    auto reqs = flatRequests(256);
    OnOffTraffic traffic;
    traffic.onRate = 8.0;
    traffic.offRate = 0.5;
    traffic.meanOnSeconds = 1.5;
    traffic.meanOffSeconds = 3.0;
    auto a = onOffArrivals(reqs, traffic, 21);
    auto b = onOffArrivals(reqs, traffic, 21);
    expectSameArrivals(a, b);

    auto c = onOffArrivals(reqs, traffic, 22);
    int same = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (a[i].arrivalSeconds == c[i].arrivalSeconds)
            ++same;
    EXPECT_LT(same, 4);
}

TEST(Arrivals, GammaEmpiricalMeanRateMatchesConfigured)
{
    // Property: over many arrivals the empirical rate
    // n / t_last approaches the configured rate regardless of the
    // burstiness (CV); averaged over seeds to keep the tolerance
    // tight without flaking.
    auto reqs = flatRequests(4000);
    for (double cv : {0.5, 1.0, 3.0}) {
        double rate_sum = 0.0;
        const int kSeeds = 5;
        for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
            auto timed = gammaArrivals(reqs, 4.0, cv, seed);
            ASSERT_GT(timed.back().arrivalSeconds, 0.0);
            rate_sum += static_cast<double>(timed.size()) /
                        timed.back().arrivalSeconds;
        }
        EXPECT_NEAR(rate_sum / kSeeds, 4.0, 4.0 * 0.08) << "cv " << cv;
    }
}

TEST(Arrivals, OnOffEmpiricalMeanRateMatchesConfigured)
{
    auto reqs = flatRequests(4000);
    OnOffTraffic traffic;
    traffic.onRate = 10.0;
    traffic.offRate = 0.0;
    traffic.meanOnSeconds = 2.0;
    traffic.meanOffSeconds = 3.0;
    // Long-run rate = (on * t_on + off * t_off) / (t_on + t_off).
    double expected = (traffic.onRate * traffic.meanOnSeconds +
                       traffic.offRate * traffic.meanOffSeconds) /
                      (traffic.meanOnSeconds + traffic.meanOffSeconds);
    double rate_sum = 0.0;
    const int kSeeds = 5;
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
        auto timed = onOffArrivals(reqs, traffic, seed);
        ASSERT_GT(timed.back().arrivalSeconds, 0.0);
        rate_sum += static_cast<double>(timed.size()) /
                    timed.back().arrivalSeconds;
    }
    EXPECT_NEAR(rate_sum / kSeeds, expected, expected * 0.10);
}

TEST(Trace, NamesAndSuites)
{
    EXPECT_EQ(traceTaskName(TraceTask::QMSum), "QMSum");
    EXPECT_STREQ(traceTaskStats(TraceTask::QMSum).suite, "LongBench");
    EXPECT_STREQ(traceTaskStats(TraceTask::LoogleSd).suite, "LV-Eval");
    EXPECT_EQ(allTraceTasks().size(), 4u);
}

} // namespace
} // namespace pimphony
