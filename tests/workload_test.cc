/**
 * @file
 * Workload tests: the synthetic traces must reproduce Table II's
 * statistics and honour bounds; generation is deterministic per seed.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "workload/trace.hh"

namespace pimphony {
namespace {

class TraceMoments : public ::testing::TestWithParam<TraceTask>
{
};

TEST_P(TraceMoments, MatchTableII)
{
    TraceTask task = GetParam();
    const auto &ref = traceTaskStats(task);
    TraceGenerator gen(task, 7);
    auto reqs = gen.generate(20000);

    StatAccumulator s;
    for (const auto &r : reqs) {
        ASSERT_GE(static_cast<double>(r.contextTokens), ref.min);
        ASSERT_LE(static_cast<double>(r.contextTokens), ref.max);
        s.add(static_cast<double>(r.contextTokens));
    }
    // Truncation shifts moments slightly; 12% on the mean, 25% on
    // the standard deviation keeps the distribution recognizably
    // Table II.
    EXPECT_NEAR(s.mean(), ref.mean, ref.mean * 0.12) << ref.name;
    EXPECT_NEAR(s.stddev(), ref.stddev, ref.stddev * 0.25) << ref.name;
}

INSTANTIATE_TEST_SUITE_P(AllTasks, TraceMoments,
                         ::testing::ValuesIn(allTraceTasks()));

TEST(Trace, DeterministicPerSeed)
{
    TraceGenerator a(TraceTask::QMSum, 11), b(TraceTask::QMSum, 11);
    auto ra = a.generate(64), rb = b.generate(64);
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t i = 0; i < ra.size(); ++i)
        EXPECT_EQ(ra[i].contextTokens, rb[i].contextTokens);
}

TEST(Trace, DifferentSeedsDiffer)
{
    TraceGenerator a(TraceTask::QMSum, 1), b(TraceTask::QMSum, 2);
    auto ra = a.generate(64), rb = b.generate(64);
    int same = 0;
    for (std::size_t i = 0; i < ra.size(); ++i)
        if (ra[i].contextTokens == rb[i].contextTokens)
            ++same;
    EXPECT_LT(same, 8);
}

TEST(Trace, IdsAreUniqueAcrossBatches)
{
    TraceGenerator gen(TraceTask::Musique, 3);
    auto a = gen.generate(10);
    auto b = gen.generate(10);
    EXPECT_EQ(a.back().id + 1, b.front().id);
}

TEST(Trace, ScaledGenerationHitsTargetMean)
{
    TraceGenerator gen(TraceTask::MultifieldQa, 5);
    auto reqs = gen.generateScaled(5000, 262144);
    StatAccumulator s;
    for (const auto &r : reqs)
        s.add(static_cast<double>(r.contextTokens));
    EXPECT_NEAR(s.mean(), 262144.0, 262144.0 * 0.12);
}

TEST(Trace, DecodeTokensPropagated)
{
    TraceGenerator gen(TraceTask::LoogleSd, 9);
    auto reqs = gen.generate(5, 77);
    for (const auto &r : reqs)
        EXPECT_EQ(r.decodeTokens, 77u);
}

TEST(Trace, NamesAndSuites)
{
    EXPECT_EQ(traceTaskName(TraceTask::QMSum), "QMSum");
    EXPECT_STREQ(traceTaskStats(TraceTask::QMSum).suite, "LongBench");
    EXPECT_STREQ(traceTaskStats(TraceTask::LoogleSd).suite, "LV-Eval");
    EXPECT_EQ(allTraceTasks().size(), 4u);
}

} // namespace
} // namespace pimphony
